"""Tests for the deterministic load generator (mix documents, schedules,
the capacity report, the latency histogram artifact, and the client
pipeline's failure behavior)."""

import asyncio
import json

import pytest

from repro.perf.executor import derive_seed
from repro.serve import DEFAULT_MIX, LoadMix, mix_from_dict, mix_to_dict, run_load
from repro.serve.loadgen import (
    HISTOGRAM_BUCKETS_MS,
    _client_run,
    generate_schedule,
    latency_histogram,
)
from repro.serve.wire import FrameReader, encode_frame, error_reply


class TestMixDocuments:
    def test_round_trip(self):
        mix = LoadMix(name="x", seed=3, sessions=5, ops_per_session=2,
                      set_sizes=(8, 64), overlap=0.7)
        assert mix_from_dict(mix_to_dict(mix)) == mix

    def test_document_is_json_ready(self):
        document = mix_to_dict(DEFAULT_MIX)
        assert mix_from_dict(json.loads(json.dumps(document))) == DEFAULT_MIX

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown mix keys"):
            mix_from_dict({"name": "x", "sessons": 3})

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadMix(sessions=0)
        with pytest.raises(ValueError):
            LoadMix(set_sizes=())
        with pytest.raises(ValueError):
            LoadMix(op_weights=(("frobnicate", 1.0),))
        with pytest.raises(ValueError):
            LoadMix(overlap=1.5)

    def test_seed_lineage_is_shared(self):
        mix = LoadMix(seed=9)
        assert mix.session_seed(4) == derive_seed(derive_seed(9, 1), 4)
        assert mix.traffic_seed(4) == derive_seed(derive_seed(9, 2), 4)
        assert mix.session_seed(4) != mix.traffic_seed(4)


class TestSchedule:
    def test_deterministic(self):
        mix = LoadMix(sessions=6, ops_per_session=5, universe_size=1 << 20)
        assert generate_schedule(mix) == generate_schedule(mix)

    def test_shape_and_order(self):
        mix = LoadMix(sessions=4, ops_per_session=3, universe_size=1 << 20,
                      set_sizes=(16,))
        schedule = generate_schedule(mix)
        assert len(schedule) == 12
        # Op-index-major round-robin: the worst case for per-session
        # batching, the natural case for cross-session coalescing.
        assert [op.session_index for op in schedule[:4]] == [0, 1, 2, 3]
        assert all(op.op_index == 0 for op in schedule[:4])
        for op in schedule:
            assert len(op.alice) <= 16 and len(op.bob) <= 16
            assert len(set(op.bob)) == len(op.bob)

    def test_overlap_planted(self):
        mix = LoadMix(sessions=2, ops_per_session=8, universe_size=1 << 30,
                      set_sizes=(64,), overlap=1.0)
        shared = [
            len(set(op.alice) & set(op.bob))
            for op in generate_schedule(mix)
            if op.alice and op.bob
        ]
        # With overlap=1 every bob is (up to size truncation) drawn from
        # alice; at universe 2^30 accidental overlap is essentially zero.
        assert shared and all(count > 0 for count in shared)


class TestRunLoad:
    def test_report_shape(self):
        mix = LoadMix(sessions=6, ops_per_session=4, universe_size=1 << 20,
                      set_sizes=(16,))
        report = run_load(mix, tick_s=0.001, connections=3)
        assert report.ops_total == 24
        assert report.ops_ok == 24 and report.shed == 0
        assert report.wall_s > 0 and report.ops_per_sec > 0
        assert 0 < report.p50_ms <= report.p99_ms <= report.p999_ms
        assert len(report.latencies_ms) == 24
        document = report.as_dict()
        assert json.dumps(document)  # JSON-ready (no nan, no sets)
        assert document["ops_ok"] == 24


async def _drive_client(handler, op_count, pipeline=4):
    """Run ``_client_run`` against a scripted fake server.

    ``handler(request, writer)`` is called once per received frame and
    decides what (if anything) to reply; returning False closes the
    connection immediately, simulating a server death mid-load.
    """
    async def serve(reader, writer):
        frames = FrameReader(reader)
        try:
            while True:
                request = await frames.next()
                if request is None:
                    break
                if await handler(request, writer) is False:
                    break
                await writer.drain()
        finally:
            writer.close()

    server = await asyncio.start_server(serve, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    reader, writer = await asyncio.open_connection(host, port)
    op_frames = [
        (i, encode_frame({"op": "noop", "id": i})) for i in range(op_count)
    ]
    latencies, shed_latencies = [], []
    counters = {"ok": 0, "shed": 0, "degraded": 0, "errors": []}
    try:
        # The 15s lid turns a regression back into the pre-fix deadlock
        # (send loop parked forever on the pipeline semaphore) into a
        # TimeoutError test failure instead of a hung suite.
        await asyncio.wait_for(
            _client_run(
                FrameReader(reader), writer, op_frames, pipeline,
                latencies, counters, shed_latencies,
            ),
            timeout=15,
        )
    finally:
        server.close()
        await server.wait_closed()
    return latencies, shed_latencies, counters


class TestClientRunFailures:
    """Regression tests for the client pipeline's crash/deadlock bugs.

    Both failure modes reproduce on the pre-fix ``_client_run``: the
    deadlock test hangs forever (the send loop parks on the pipeline
    semaphore that only the dead read loop could release) and the
    unmatched-id test dies with ``KeyError`` inside the read loop.
    """

    def test_server_death_mid_load_fails_fast_instead_of_deadlocking(self):
        # The server answers one op, then drops the connection with the
        # client still holding a full pipeline window.  Pre-fix, the send
        # loop blocks forever on window.acquire() -- wait_for would hit
        # its timeout; post-fix the read loop's failure propagates.
        async def die_after_one(request, writer):
            if request["id"] == 0:
                writer.write(encode_frame({"ok": True, "id": 0}))
                return True
            return False

        async def scenario():
            await asyncio.wait_for(
                _drive_client(die_after_one, op_count=64, pipeline=4),
                timeout=5,
            )

        with pytest.raises(RuntimeError, match="closed connection mid-load"):
            asyncio.run(scenario())

    def test_reply_without_id_surfaces_as_typed_error_not_keyerror(self):
        # bad-frame error replies are emitted before the server knows a
        # request id; pre-fix, pending.pop(None) raised KeyError and
        # killed the read loop.
        sent_junk = []

        async def junk_then_answer(request, writer):
            if not sent_junk:
                sent_junk.append(True)
                writer.write(
                    encode_frame(error_reply("bad-frame", "not yours"))
                )
            writer.write(encode_frame({"ok": True, "id": request["id"]}))
            return True

        latencies, shed, counters = asyncio.run(
            _drive_client(junk_then_answer, op_count=8)
        )
        assert counters["ok"] == 8 and len(latencies) == 8
        assert len(counters["errors"]) == 1
        assert counters["errors"][0]["type"] == "bad-frame"
        assert counters["errors"][0]["unmatched"] is True

    def test_unknown_reply_id_surfaces_as_typed_error(self):
        async def answer_with_alien_id(request, writer):
            if request["id"] == 0:
                writer.write(encode_frame({"ok": True, "id": 9999}))
            writer.write(encode_frame({"ok": True, "id": request["id"]}))
            return True

        latencies, shed, counters = asyncio.run(
            _drive_client(answer_with_alien_id, op_count=4)
        )
        assert counters["ok"] == 4
        assert len(counters["errors"]) == 1
        assert counters["errors"][0]["unmatched"] is True

    def test_shed_latencies_kept_out_of_answered_percentiles(self):
        # Odd ids get typed overloaded rejections: their (near-zero)
        # turnarounds must land in the shed list, not skew the answered
        # percentiles downward.
        async def shed_odd(request, writer):
            request_id = request["id"]
            if request_id % 2:
                writer.write(
                    encode_frame(
                        error_reply("overloaded", "full", request_id,
                                    scope="server")
                    )
                )
            else:
                writer.write(encode_frame({"ok": True, "id": request_id}))
            return True

        latencies, shed, counters = asyncio.run(
            _drive_client(shed_odd, op_count=10)
        )
        assert counters["ok"] == 5 and counters["shed"] == 5
        assert len(latencies) == 5 and len(shed) == 5
        assert not counters["errors"]


class TestHistogram:
    def test_buckets_cumulative_with_inf_tail(self):
        histogram = latency_histogram([0.07, 0.07, 3.0, 9999.0])
        assert histogram["count"] == 4
        counts = [bucket["count"] for bucket in histogram["buckets"]]
        assert counts == sorted(counts)  # cumulative le-buckets
        assert histogram["buckets"][-1]["le"] == "inf"
        assert counts[-1] == 4
        assert json.dumps(histogram)

    def test_empty(self):
        histogram = latency_histogram([])
        assert histogram["count"] == 0
        assert all(bucket["count"] == 0 for bucket in histogram["buckets"])

    def test_bucket_bounds_sorted(self):
        finite = [b for b in HISTOGRAM_BUCKETS_MS if b != float("inf")]
        assert finite == sorted(finite)
