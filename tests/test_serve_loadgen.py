"""Tests for the deterministic load generator (mix documents, schedules,
the capacity report, and the latency histogram artifact)."""

import json

import pytest

from repro.perf.executor import derive_seed
from repro.serve import DEFAULT_MIX, LoadMix, mix_from_dict, mix_to_dict, run_load
from repro.serve.loadgen import (
    HISTOGRAM_BUCKETS_MS,
    generate_schedule,
    latency_histogram,
)


class TestMixDocuments:
    def test_round_trip(self):
        mix = LoadMix(name="x", seed=3, sessions=5, ops_per_session=2,
                      set_sizes=(8, 64), overlap=0.7)
        assert mix_from_dict(mix_to_dict(mix)) == mix

    def test_document_is_json_ready(self):
        document = mix_to_dict(DEFAULT_MIX)
        assert mix_from_dict(json.loads(json.dumps(document))) == DEFAULT_MIX

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown mix keys"):
            mix_from_dict({"name": "x", "sessons": 3})

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadMix(sessions=0)
        with pytest.raises(ValueError):
            LoadMix(set_sizes=())
        with pytest.raises(ValueError):
            LoadMix(op_weights=(("frobnicate", 1.0),))
        with pytest.raises(ValueError):
            LoadMix(overlap=1.5)

    def test_seed_lineage_is_shared(self):
        mix = LoadMix(seed=9)
        assert mix.session_seed(4) == derive_seed(derive_seed(9, 1), 4)
        assert mix.traffic_seed(4) == derive_seed(derive_seed(9, 2), 4)
        assert mix.session_seed(4) != mix.traffic_seed(4)


class TestSchedule:
    def test_deterministic(self):
        mix = LoadMix(sessions=6, ops_per_session=5, universe_size=1 << 20)
        assert generate_schedule(mix) == generate_schedule(mix)

    def test_shape_and_order(self):
        mix = LoadMix(sessions=4, ops_per_session=3, universe_size=1 << 20,
                      set_sizes=(16,))
        schedule = generate_schedule(mix)
        assert len(schedule) == 12
        # Op-index-major round-robin: the worst case for per-session
        # batching, the natural case for cross-session coalescing.
        assert [op.session_index for op in schedule[:4]] == [0, 1, 2, 3]
        assert all(op.op_index == 0 for op in schedule[:4])
        for op in schedule:
            assert len(op.alice) <= 16 and len(op.bob) <= 16
            assert len(set(op.bob)) == len(op.bob)

    def test_overlap_planted(self):
        mix = LoadMix(sessions=2, ops_per_session=8, universe_size=1 << 30,
                      set_sizes=(64,), overlap=1.0)
        shared = [
            len(set(op.alice) & set(op.bob))
            for op in generate_schedule(mix)
            if op.alice and op.bob
        ]
        # With overlap=1 every bob is (up to size truncation) drawn from
        # alice; at universe 2^30 accidental overlap is essentially zero.
        assert shared and all(count > 0 for count in shared)


class TestRunLoad:
    def test_report_shape(self):
        mix = LoadMix(sessions=6, ops_per_session=4, universe_size=1 << 20,
                      set_sizes=(16,))
        report = run_load(mix, tick_s=0.001, connections=3)
        assert report.ops_total == 24
        assert report.ops_ok == 24 and report.shed == 0
        assert report.wall_s > 0 and report.ops_per_sec > 0
        assert 0 < report.p50_ms <= report.p99_ms <= report.p999_ms
        assert len(report.latencies_ms) == 24
        document = report.as_dict()
        assert json.dumps(document)  # JSON-ready (no nan, no sets)
        assert document["ops_ok"] == 24


class TestHistogram:
    def test_buckets_cumulative_with_inf_tail(self):
        histogram = latency_histogram([0.07, 0.07, 3.0, 9999.0])
        assert histogram["count"] == 4
        counts = [bucket["count"] for bucket in histogram["buckets"]]
        assert counts == sorted(counts)  # cumulative le-buckets
        assert histogram["buckets"][-1]["le"] == "inf"
        assert counts[-1] == 4
        assert json.dumps(histogram)

    def test_empty(self):
        histogram = latency_histogram([])
        assert histogram["count"] == 0
        assert all(bucket["count"] == 0 for bucket in histogram["buckets"])

    def test_bucket_bounds_sorted(self):
        finite = [b for b in HISTOGRAM_BUCKETS_MS if b != float("inf")]
        assert finite == sorted(finite)
