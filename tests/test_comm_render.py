"""Tests for transcript rendering."""

from repro.comm.render import render_transcript, summarize_by_sender
from repro.comm.transcript import Transcript
from repro.util.bits import BitString


def build_transcript(pattern):
    transcript = Transcript()
    for sender, bits in pattern:
        transcript.record_send(sender, BitString(0, bits))
    return transcript


class TestSummarize:
    def test_per_sender_totals(self):
        transcript = build_transcript(
            [("alice", 10), ("alice", 5), ("bob", 7), ("alice", 3)]
        )
        summary = summarize_by_sender(transcript)
        assert summary["alice"] == {"bits": 18, "messages": 2, "chunks": 3}
        assert summary["bob"] == {"bits": 7, "messages": 1, "chunks": 1}


class TestRender:
    def test_empty(self):
        assert "empty transcript" in render_transcript(Transcript())

    def test_directions(self):
        transcript = build_transcript([("alice", 8), ("bob", 4)])
        text = render_transcript(transcript)
        lines = text.splitlines()
        assert "──▶" in lines[0]
        assert "◀──" in lines[1]
        assert "total: 12 bits in 2 messages" in lines[-1]
        assert "alice: 8" in lines[-1]
        assert "bob: 4" in lines[-1]

    def test_elision(self):
        transcript = build_transcript(
            [("alice" if i % 2 == 0 else "bob", 1) for i in range(100)]
        )
        text = render_transcript(transcript, max_messages=10)
        assert "90 messages elided" in text
        assert len(text.splitlines()) == 12  # 10 rows + elision + total

    def test_real_protocol_transcript(self, rng):
        from conftest import make_instance
        from repro.core.tree_protocol import TreeProtocol

        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        outcome = TreeProtocol(1 << 16, 64, rounds=2).run(s, t, seed=0)
        text = render_transcript(outcome.transcript)
        assert f"total: {outcome.total_bits} bits" in text
        assert text.count("alice") >= 1
        assert text.count("bob") >= 1

    def test_first_party_side(self):
        transcript = build_transcript([("bob", 4)])
        text = render_transcript(transcript, first_party="bob")
        assert "──▶" in text
