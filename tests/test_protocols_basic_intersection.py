"""Tests for Lemma 3.3 (Basic-Intersection) and Corollary 3.4."""

import math
import random

import pytest

from conftest import make_instance
from repro.protocols.basic_intersection import (
    BasicIntersectionProtocol,
    range_for_inverse_failure,
)


class TestLemma33Properties:
    """The three guarantees of Lemma 3.3, checked across many seeds."""

    def test_property_1_outputs_are_subsets(self, rng):
        # S' subset of S and T' subset of T -- with probability 1, so we
        # check it even under a weak (exponent 0) hash.
        protocol = BasicIntersectionProtocol(1 << 16, 64, exponent=0)
        for seed in range(40):
            s, t = make_instance(rng, 1 << 16, 64, 0.3)
            outcome = protocol.run(s, t, seed=seed)
            assert outcome.alice_output <= s
            assert outcome.bob_output <= t

    def test_property_2_disjoint_stays_disjoint(self, rng):
        # S n T empty => S' n T' empty with probability 1.
        protocol = BasicIntersectionProtocol(1 << 16, 64, exponent=0)
        for seed in range(40):
            s, t = make_instance(rng, 1 << 16, 64, 0.0)
            outcome = protocol.run(s, t, seed=seed)
            assert not (outcome.alice_output & outcome.bob_output)

    def test_property_3_superset_always(self, rng):
        # S n T subset of S' n T' -- with probability 1.
        protocol = BasicIntersectionProtocol(1 << 16, 64, exponent=0)
        for seed in range(40):
            s, t = make_instance(rng, 1 << 16, 64, 0.5)
            outcome = protocol.run(s, t, seed=seed)
            assert (s & t) <= (outcome.alice_output & outcome.bob_output)

    def test_property_3_exactness_whp(self, rng):
        # With probability 1 - 1/m^i, S' = T' = S n T.
        protocol = BasicIntersectionProtocol(1 << 20, 64, exponent=2)
        failures = 0
        for seed in range(100):
            s, t = make_instance(rng, 1 << 20, 64, 0.5)
            outcome = protocol.run(s, t, seed=seed)
            if not outcome.correct_for(s, t):
                failures += 1
        assert failures <= 2  # bound is 100/128^2 << 1 expected failures

    def test_corollary_3_4(self, rng):
        # If the outputs are equal, they equal S n T -- the invariant that
        # makes equality tests sound verification.  Checked on every seed,
        # including ones where the protocol errs.
        protocol = BasicIntersectionProtocol(1 << 12, 32, exponent=0)
        for seed in range(200):
            s, t = make_instance(rng, 1 << 12, 32, 0.4)
            outcome = protocol.run(s, t, seed=seed)
            if outcome.alice_output == outcome.bob_output:
                assert outcome.alice_output == s & t


class TestCost:
    def test_exactly_four_messages(self, rng):
        protocol = BasicIntersectionProtocol(1 << 16, 64)
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        assert protocol.run(s, t, seed=0).num_messages == 4

    def test_communication_o_i_m_log_m(self):
        # O(i * m log m) bits: per-element width is (i+2) ceil(log2 m) + 1.
        rng = random.Random(6)
        for exponent in (1, 2, 4):
            m = 128  # |S| + |T| with k = 64 each
            s, t = make_instance(rng, 1 << 30, 64, 0.0)
            protocol = BasicIntersectionProtocol(1 << 30, 64, exponent=exponent)
            bits = protocol.run(s, t, seed=0).total_bits
            width = math.ceil(math.log2(2 * m ** (exponent + 2)))
            assert bits <= m * width + 64

    def test_cost_independent_of_universe(self):
        rng = random.Random(7)
        k = 32
        s1, t1 = make_instance(rng, 1 << 12, k, 0.5)
        s2, t2 = make_instance(rng, 1 << 48, k, 0.5)
        bits_small = (
            BasicIntersectionProtocol(1 << 12, k).run(s1, t1, seed=0).total_bits
        )
        bits_large = (
            BasicIntersectionProtocol(1 << 48, k).run(s2, t2, seed=0).total_bits
        )
        assert bits_large == bits_small

    def test_empty_inputs(self):
        protocol = BasicIntersectionProtocol(1 << 10, 8)
        outcome = protocol.run(set(), set(), seed=0)
        assert outcome.alice_output == outcome.bob_output == frozenset()
        assert outcome.num_messages <= 4

    def test_asymmetric_sizes(self, rng):
        protocol = BasicIntersectionProtocol(1 << 16, 64)
        s = frozenset(rng.sample(range(1 << 16), 60))
        t = frozenset(list(s)[:3])
        outcome = protocol.run(s, t, seed=0)
        assert outcome.correct_for(s, t)


class TestRangeRule:
    def test_range_for_inverse_failure(self):
        assert range_for_inverse_failure(10, 100.0) == 10_000
        assert range_for_inverse_failure(10, 1.0) == 100
        assert range_for_inverse_failure(0, 50.0) == 200  # m clamped to 2

    def test_range_is_at_least_two(self):
        assert range_for_inverse_failure(1, 0.1) >= 2

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            BasicIntersectionProtocol(100, 10, exponent=-1)
