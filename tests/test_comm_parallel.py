"""Tests for the batched parallel-composition combinator."""

import pytest

from conftest import make_instance
from repro.comm.engine import run_two_party
from repro.comm.errors import ProtocolViolation
from repro.comm.parallel import run_batched
from repro.protocols.basic_intersection import BasicIntersectionProtocol
from repro.protocols.base import subcontext
from repro.protocols.equality import run_equality


def batched_equality_party(values, width):
    """A party that runs one equality test per value, batched."""

    def party(ctx):
        coroutines = [
            run_equality(ctx, value, width=width, label=f"eq/{index}")
            for index, value in enumerate(values(ctx))
        ]
        results = yield from run_batched(ctx, coroutines, num_messages=2)
        return results

    return party


class TestBatchedEquality:
    def test_verdicts_and_round_count(self):
        alice_values = ["a", "b", "c", "d"]
        bob_values = ["a", "x", "c", "y"]
        outcome = run_two_party(
            batched_equality_party(lambda ctx: alice_values, 16),
            batched_equality_party(lambda ctx: bob_values, 16),
            alice_input=None,
            bob_input=None,
            shared_seed=0,
        )
        assert outcome.alice_output == [True, False, True, False]
        assert outcome.bob_output == outcome.alice_output
        # N = 4 instances, still exactly 2 messages.
        assert outcome.num_messages == 2

    def test_framing_overhead_is_logarithmic(self):
        n_instances = 32
        width = 16
        values = [str(i) for i in range(n_instances)]
        outcome = run_two_party(
            batched_equality_party(lambda ctx: values, width),
            batched_equality_party(lambda ctx: values, width),
            alice_input=None,
            bob_input=None,
        )
        raw = n_instances * (width + 1)  # unbatched payload bits
        assert outcome.total_bits < raw * 2.2  # small framing factor

    def test_empty_batch(self):
        def party(ctx):
            return (yield from run_batched(ctx, [], num_messages=2))

        outcome = run_two_party(party, party, alice_input=None, bob_input=None)
        assert outcome.alice_output == []
        # Empty frames still flow through the engine, but zero-length
        # payloads never open messages, so the transcript stays empty.
        assert outcome.num_messages == 0
        assert outcome.total_bits == 0


class TestBatchedBasicIntersection:
    def test_matches_individual_runs(self, rng):
        # Batch 6 Basic-Intersection instances into 4 messages and compare
        # against the standalone protocol outputs instance by instance.
        protocol = BasicIntersectionProtocol(1 << 14, 16)
        instances = [make_instance(rng, 1 << 14, 16, 0.5) for _ in range(6)]

        def party(role):
            def fn(ctx):
                coroutines = []
                for index, (s, t) in enumerate(instances):
                    sub = subcontext(ctx, f"bi/{index}", s if role == "alice" else t)
                    coroutines.append(
                        protocol.alice(sub) if role == "alice" else protocol.bob(sub)
                    )
                return (yield from run_batched(ctx, coroutines, num_messages=4))

            return fn

        outcome = run_two_party(
            party("alice"), party("bob"), alice_input=None, bob_input=None,
            shared_seed=5,
        )
        assert outcome.num_messages == 4
        for index, (s, t) in enumerate(instances):
            individual = protocol.run(s, t, seed=0)
            # same invariants; not necessarily identical randomness, so
            # compare against ground truth
            assert outcome.alice_output[index] <= s
            assert s & t <= outcome.alice_output[index]


class TestContractEnforcement:
    def test_too_few_messages_detected(self):
        def party(ctx):
            coroutines = [
                run_equality(ctx, "v", width=8, label="eq/0"),
            ]
            # equality takes 2 messages; claim 1... the Recv side blocks,
            # so the engine deadlocks OR the combinator raises.
            return (yield from run_batched(ctx, coroutines, num_messages=1))

        from repro.comm.errors import ProtocolDeadlock, ProtocolError

        with pytest.raises(ProtocolError):
            run_two_party(party, party, alice_input=None, bob_input=None)

    def test_mismatched_instance_counts_detected(self):
        def party(count):
            def fn(ctx):
                coroutines = [
                    run_equality(ctx, "v", width=8, label=f"eq/{i}")
                    for i in range(count)
                ]
                return (yield from run_batched(ctx, coroutines, num_messages=2))

            return fn

        with pytest.raises(Exception):
            run_two_party(
                party(2), party(3), alice_input=None, bob_input=None
            )
