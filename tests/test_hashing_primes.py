"""Tests for primality testing and prime search."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.primes import is_prime, next_prime, random_prime
from repro.util.rng import SharedRandomness


def sieve(limit):
    flags = [True] * limit
    flags[0] = flags[1] = False
    for p in range(2, int(limit**0.5) + 1):
        if flags[p]:
            for multiple in range(p * p, limit, p):
                flags[multiple] = False
    return [i for i, flag in enumerate(flags) if flag]


class TestIsPrime:
    def test_matches_sieve_below_10000(self):
        primes = set(sieve(10_000))
        for candidate in range(10_000):
            assert is_prime(candidate) == (candidate in primes)

    def test_known_large_primes(self):
        assert is_prime(2**31 - 1)  # Mersenne
        assert is_prime(2**61 - 1)  # Mersenne
        assert is_prime(1_000_000_007)
        assert is_prime(1_000_000_009)

    def test_known_large_composites(self):
        assert not is_prime(2**32 - 1)
        assert not is_prime(1_000_000_007 * 1_000_000_009)

    def test_carmichael_numbers(self):
        # Fermat pseudoprimes to many bases; Miller-Rabin must reject them.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041):
            assert not is_prime(carmichael)

    def test_strong_pseudoprime_base_2(self):
        assert not is_prime(2047)  # 23 * 89, strong pseudoprime base 2

    @given(st.integers(min_value=2, max_value=10**6))
    def test_no_small_factor_missed(self, value):
        if is_prime(value):
            for factor in (2, 3, 5, 7, 11, 13):
                assert value == factor or value % factor != 0


class TestNextPrime:
    def test_basic(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 2
        assert next_prime(8) == 11
        assert next_prime(14) == 17

    @given(st.integers(min_value=2, max_value=10**9))
    def test_result_is_prime_and_minimal(self, lower):
        prime = next_prime(lower)
        assert prime >= lower
        assert is_prime(prime)
        # Bertrand: the gap is bounded; check minimality over the gap.
        for candidate in range(lower, prime):
            assert not is_prime(candidate)


class TestRandomPrime:
    def test_in_range_and_prime(self):
        stream = SharedRandomness(1).stream("p")
        for _ in range(20):
            prime = random_prime(1000, 5000, stream)
            assert 1000 <= prime < 5000
            assert is_prime(prime)

    def test_spread(self):
        # The FKS analysis needs the prime to actually be random: over many
        # draws we must see many distinct primes.
        stream = SharedRandomness(2).stream("p")
        drawn = {random_prime(10_000, 100_000, stream) for _ in range(50)}
        assert len(drawn) > 30

    def test_deterministic_given_stream(self):
        a = random_prime(100, 1000, SharedRandomness(3).stream("x"))
        b = random_prime(100, 1000, SharedRandomness(3).stream("x"))
        assert a == b

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            random_prime(50, 50, SharedRandomness(1).stream("p"))

    def test_interval_without_prime(self):
        with pytest.raises(ValueError):
            random_prime(24, 28, SharedRandomness(1).stream("p"))


class TestHotCacheAgreement:
    """The lru_cache layer on is_prime/next_prime is pure perf: cached and
    uncached answers must agree everywhere (satellite regression for the
    repro.perf hot-path caching)."""

    def test_is_prime_cached_matches_uncached_sweep(self):
        from repro.perf import clear_hot_caches, hot_caches_disabled

        candidates = list(range(2, 2000)) + [
            1 << 13, (1 << 13) + 1, 104_729, 104_730, 2**31 - 1
        ]
        clear_hot_caches()
        cached = [is_prime(candidate) for candidate in candidates]
        with hot_caches_disabled():
            uncached = [is_prime(candidate) for candidate in candidates]
        assert cached == uncached
        assert cached[:4] == [True, True, False, True]  # 2, 3, 4, 5

    def test_next_prime_cached_matches_uncached_sweep(self):
        from repro.perf import clear_hot_caches, hot_caches_disabled

        starts = [2, 3, 10, 100, 1000, 104_728, 1 << 16]
        clear_hot_caches()
        cached = [next_prime(start) for start in starts]
        with hot_caches_disabled():
            uncached = [next_prime(start) for start in starts]
        assert cached == uncached
        for start, prime in zip(starts, cached):
            assert prime >= start and is_prime(prime)

    def test_cache_stats_report_hits(self):
        from repro.perf import clear_hot_caches, hot_cache_stats

        clear_hot_caches()
        for _ in range(3):
            is_prime(104_729)
        stats = hot_cache_stats()["hashing.primes.is_prime"]
        assert stats["hits"] >= 2
