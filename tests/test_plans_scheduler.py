"""Tests for the plan scheduler: cache reuse, resume bit-identity, and the
determinism contract (aggregates depend only on the plan, never on workers,
executor kind, shard size, cache state, or interruption points)."""

import pytest

from repro.plans import (
    Plan,
    ProtocolSpec,
    RetrySpec,
    ShardCache,
    cached_trials,
    compile_plan,
    run_plan,
)
from repro.workloads import Distribution, WorkloadSpec


def make_plan(**overrides):
    base = dict(
        name="sched-unit",
        protocols=(ProtocolSpec("bucket"),),
        instances=(
            WorkloadSpec(
                universe_size=1 << 10,
                set_size=8,
                overlap_fraction=0.5,
                distribution=Distribution.UNIFORM,
            ),
        ),
        trials=6,
        seed=11,
        shard_size=2,
    )
    base.update(overrides)
    return Plan(**base)


def run_serial(plan, **kwargs):
    kwargs.setdefault("executor", "serial")
    kwargs.setdefault("use_env_cache", False)
    return run_plan(plan, **kwargs)


class TestRunPlan:
    def test_cold_run_aggregates(self):
        result = run_serial(make_plan())
        assert not result.interrupted
        assert result.shards_total == 3
        assert result.shards_executed == 3
        assert result.shards_cached == 0
        assert len(result.cells) == 1
        agg = result.cells[0]["aggregate"]
        assert agg["trials"] == 6
        assert agg["total_bits"] > 0
        assert 0.0 <= agg["success_rate"] <= 1.0
        assert len(result.counters_sha256) == 64

    def test_warm_run_executes_nothing(self, tmp_path):
        cache = ShardCache(tmp_path)
        cold = run_serial(make_plan(), cache=cache)
        warm = run_serial(make_plan(), cache=ShardCache(tmp_path))
        assert warm.shards_executed == 0
        assert warm.shards_cached == warm.shards_total == 3
        assert warm.cache_hits == 3
        assert warm.counters_sha256 == cold.counters_sha256
        assert warm.cells == cold.cells

    def test_no_cache_matches_cached(self, tmp_path):
        cached = run_serial(make_plan(), cache=ShardCache(tmp_path))
        plain = run_serial(make_plan())
        assert plain.counters_sha256 == cached.counters_sha256
        assert plain.cells == cached.cells

    def test_halt_then_resume_bit_identical(self, tmp_path):
        baseline = run_serial(make_plan())

        halted = run_serial(
            make_plan(), cache=ShardCache(tmp_path), halt_after=1
        )
        assert halted.interrupted
        assert halted.shards_executed == 1
        assert halted.cells is None
        assert halted.counters_sha256 is None

        resumed = run_serial(make_plan(), cache=ShardCache(tmp_path))
        assert not resumed.interrupted
        assert resumed.shards_cached == 1
        assert resumed.shards_executed == 2
        assert resumed.counters_sha256 == baseline.counters_sha256
        assert resumed.cells == baseline.cells

    def test_halt_after_zero(self, tmp_path):
        halted = run_serial(
            make_plan(), cache=ShardCache(tmp_path), halt_after=0
        )
        assert halted.interrupted
        assert halted.shards_executed == 0

    def test_fingerprint_invariant_to_shard_size(self):
        fine = run_serial(make_plan(shard_size=1))
        coarse = run_serial(make_plan(shard_size=6))
        assert fine.shards_total == 6
        assert coarse.shards_total == 1
        assert fine.counters_sha256 == coarse.counters_sha256
        assert fine.cells == coarse.cells

    def test_process_pool_matches_serial(self):
        serial = run_serial(make_plan())
        pooled = run_plan(
            make_plan(),
            use_env_cache=False,
            workers=2,
            executor="process",
        )
        assert pooled.counters_sha256 == serial.counters_sha256
        assert pooled.cells == serial.cells

    def test_journal_written(self, tmp_path):
        cache = ShardCache(tmp_path)
        result = run_serial(make_plan(), cache=cache)
        entries = cache.read_journal(result.plan_key)
        assert [e["index"] for e in entries] == [0, 1, 2]
        assert all(e["status"] == "executed" for e in entries)

    def test_stats_document(self, tmp_path):
        result = run_serial(make_plan(), cache=ShardCache(tmp_path))
        stats = result.stats()
        assert stats["plan"] == "sched-unit"
        assert stats["shards_total"] == 3
        assert stats["interrupted"] is False

    def test_survival_analysis(self):
        plan = make_plan(
            analysis="survival",
            fault_specs=("bitflip@0.05",),
            trials=4,
            shard_size=4,
            retry=RetrySpec(max_attempts=4, attempt_bit_budget=None),
        )
        result = run_serial(plan)
        agg = result.cells[0]["aggregate"]
        assert agg["trials"] == 4
        assert agg["exact"] + agg["inexact"] + agg["degraded"] == 4
        assert agg["attempts"] >= 4
        assert result.cells[0]["fault_spec"] == "bitflip@0.05"

    def test_precompiled_plan_reused(self):
        plan = make_plan()
        compiled = compile_plan(plan)
        result = run_serial(plan, compiled=compiled)
        assert result.plan_key == compiled.plan_key


class TestCachedTrials:
    def test_matches_direct_run(self):
        values = cached_trials(_double, [3, 1, 2], cache=None)
        assert values == [6, 2, 4]

    def test_cache_round_trip(self, tmp_path):
        cache = ShardCache(tmp_path)
        first = cached_trials(_double, [1, 2], key="unit/double", cache=cache)
        again = cached_trials(_double, [1, 2], key="unit/double", cache=cache)
        assert first == again == [2, 4]
        assert cache.hits == 1

    def test_key_distinguishes_cells(self, tmp_path):
        cache = ShardCache(tmp_path)
        cached_trials(_double, [1], key="cell/a", cache=cache)
        triple = cached_trials(_triple, [1], key="cell/b", cache=cache)
        assert triple == [3]

    def test_tuples_survive_the_cache(self, tmp_path):
        cache = ShardCache(tmp_path)
        first = cached_trials(_pair, [5], key="unit/pair", cache=cache)
        second = cached_trials(_pair, [5], key="unit/pair", cache=cache)
        assert first == second == [(5, 10)]

    def test_non_json_values_skip_cache(self, tmp_path):
        cache = ShardCache(tmp_path)
        values = cached_trials(_opaque, [1], key="unit/opaque", cache=cache)
        assert isinstance(values[0], set)
        assert cache.hits == 0
        again = cached_trials(_opaque, [1], key="unit/opaque", cache=cache)
        assert isinstance(again[0], set)
        assert cache.hits == 0

    def test_no_key_means_no_cache(self, tmp_path):
        cache = ShardCache(tmp_path)
        cached_trials(_double, [1], cache=cache)
        assert cache.hits == cache.misses == 0


def _double(seed):
    return 2 * seed


def _triple(seed):
    return 3 * seed


def _pair(seed):
    return (seed, 2 * seed)


def _opaque(seed):
    return {seed}
