"""Tests for the multi-process client fleet (the out-of-process load mode).

The load-bearing claim under test: moving the clients out of process --
real sockets, real scheduling, worker interleaving the parent never sees
-- must not change a single bit of the result.  Serial oracle, in-process
clients, TCP fleet, and UDS fleet all replay the same mix document and
must agree on the aggregate fingerprint, with every operation accounted
(``ok + shed == total``) on every path.

Fleet runs spawn real worker processes, so the mixes here are small; the
schedule-partitioning unit tests below cover the combinatorics cheaply.
"""

import pytest

from repro.serve import LoadMix, run_load, run_mix_serial
from repro.serve.fleet import _encode_worker_frames, run_fleet
from repro.serve.loadgen import _partition_sessions, generate_schedule

MIX = LoadMix(
    name="fleet-test",
    seed=23,
    sessions=6,
    ops_per_session=4,
    universe_size=1 << 20,
    set_sizes=(16, 32),
)


class TestFleetDeterminism:
    def test_socket_fleet_matches_serial_and_inproc(self):
        serial = run_mix_serial(MIX)
        inproc = run_load(MIX, tick_s=0.001)
        uds = run_fleet(MIX, transport="uds", fleet=2, tick_s=0.001)
        tcp = run_fleet(MIX, transport="tcp", fleet=2, tick_s=0.001)

        for report in (uds, tcp):
            assert report.fleet == 2 and len(report.workers) == 2
            assert report.ops_ok + report.shed == report.ops_total == 24
            assert not report.errors
            assert report.fingerprint == serial["fingerprint"]
        assert inproc.fingerprint == serial["fingerprint"]
        assert uds.transport == "uds" and tcp.transport == "tcp"

    def test_worker_summaries_account_for_every_op(self):
        report = run_fleet(MIX, transport="uds", fleet=3, tick_s=0.001)
        assert sum(w["ops"] for w in report.workers) == report.ops_total
        assert sum(w["ok"] for w in report.workers) == report.ops_ok
        assert sum(w["shed"] for w in report.workers) == report.shed
        assert len(report.latencies_ms) == report.ops_ok

    def test_check_serial_gate_over_the_socket(self):
        report = run_fleet(
            MIX, transport="uds", fleet=2, tick_s=0.001, check_serial=True
        )
        assert report.serial_match is True

    def test_cold_profile_is_bit_identical(self):
        warm = run_fleet(MIX, transport="uds", fleet=2, tick_s=0.001)
        cold = run_fleet(
            MIX, transport="uds", fleet=2, tick_s=0.001, profile="cold"
        )
        assert cold.profile == "cold" and warm.profile == "warm"
        assert cold.fingerprint == warm.fingerprint

    def test_run_load_dispatches_to_fleet(self):
        report = run_load(MIX, transport="uds", fleet=2, tick_s=0.001)
        assert report.transport == "uds" and report.fleet == 2


class TestFleetValidation:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            run_fleet(MIX, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="transport"):
            run_load(MIX, transport="carrier-pigeon")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            run_load(MIX, profile="lukewarm")

    def test_fleet_size_must_be_positive(self):
        with pytest.raises(ValueError, match="fleet"):
            run_fleet(MIX, fleet=0)


class TestSchedulePartitioning:
    """The determinism argument's combinatorial half, tested without
    processes: every op appears in exactly one worker's frame list, and
    each session's ops stay in op-index order inside its worker."""

    def test_workers_cover_schedule_exactly_once(self):
        schedule = generate_schedule(MIX)
        groups = _partition_sessions(MIX, 3)
        seen = []
        for group in groups:
            _, op_frames = _encode_worker_frames(MIX, group, connections=2)
            for frames in op_frames:
                seen.extend(request_id for request_id, _ in frames)
        assert sorted(seen) == list(range(len(schedule)))

    def test_per_session_order_preserved_within_worker(self):
        schedule = generate_schedule(MIX)
        for group in _partition_sessions(MIX, 2):
            _, op_frames = _encode_worker_frames(MIX, group, connections=1)
            (frames,) = op_frames
            last_by_session = {}
            for request_id, _ in frames:
                op = schedule[request_id]
                previous = last_by_session.get(op.session_index, -1)
                assert op.op_index > previous
                last_by_session[op.session_index] = op.op_index

    def test_connections_bounded_by_sessions(self):
        open_frames, op_frames = _encode_worker_frames(
            MIX, [0, 1], connections=8
        )
        assert len(open_frames) == len(op_frames) == 2
