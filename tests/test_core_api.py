"""Tests for the user-facing API."""

import pytest

from conftest import make_instance
from repro.core.api import compute_intersection


class TestComputeIntersection:
    def test_basic(self):
        result = compute_intersection({1, 5, 9, 200}, {5, 9, 77})
        assert result.intersection == frozenset({5, 9})
        assert result.bits > 0
        assert result.messages >= 2
        assert result.parties_agree

    def test_inferred_parameters(self):
        # universe and k inferred; still exact.
        result = compute_intersection(set(range(100)), set(range(50, 150)))
        assert result.intersection == frozenset(range(50, 100))

    def test_explicit_parameters(self, rng):
        s, t = make_instance(rng, 1 << 18, 128, 0.5)
        result = compute_intersection(
            s, t, universe_size=1 << 18, max_set_size=128
        )
        assert result.intersection == s & t
        assert result.protocol == "verification-tree"
        assert result.rounds_parameter == 4  # log*(128)

    def test_rounds_parameter(self, rng):
        s, t = make_instance(rng, 1 << 18, 128, 0.5)
        r1 = compute_intersection(
            s, t, universe_size=1 << 18, max_set_size=128, rounds=1
        )
        r3 = compute_intersection(
            s, t, universe_size=1 << 18, max_set_size=128, rounds=3
        )
        assert r1.intersection == r3.intersection == s & t
        assert r1.protocol == "one-round-hashing"
        assert r1.messages <= 2
        assert r3.messages <= 18

    def test_deterministic_mode(self, rng):
        s, t = make_instance(rng, 1 << 18, 128, 0.5)
        result = compute_intersection(
            s, t, universe_size=1 << 18, max_set_size=128, deterministic=True
        )
        assert result.intersection == s & t
        assert result.protocol == "trivial-exchange"

    def test_private_model(self, rng):
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        result = compute_intersection(
            s, t, universe_size=1 << 18, max_set_size=64, model="private"
        )
        assert result.intersection == s & t
        assert result.protocol == "private-coin-intersection"

    def test_amplified(self, rng):
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        result = compute_intersection(
            s, t, universe_size=1 << 18, max_set_size=64, amplified=True
        )
        assert result.intersection == s & t
        assert result.protocol == "amplified-intersection"

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            compute_intersection({1}, {1}, model="telepathy")

    def test_seed_replayability(self, rng):
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        a = compute_intersection(s, t, universe_size=1 << 18, max_set_size=64, seed=7)
        b = compute_intersection(s, t, universe_size=1 << 18, max_set_size=64, seed=7)
        assert a.bits == b.bits
        assert a.intersection == b.intersection

    def test_empty_inputs(self):
        result = compute_intersection(set(), set())
        assert result.intersection == frozenset()

    def test_oversized_set_rejected(self):
        with pytest.raises(ValueError):
            compute_intersection({1, 2, 3}, {1}, max_set_size=2)

    def test_element_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            compute_intersection({100}, {1}, universe_size=50)

    def test_top_level_reexports(self):
        import repro

        assert repro.compute_intersection is compute_intersection
        assert repro.__version__ == "1.0.0"
