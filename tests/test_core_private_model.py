"""Tests for the constructive private-randomness translation (Section 3.1)."""

import math

from conftest import make_instance
from repro.core.private_model import PrivateCoinIntersection
from repro.core.tree_protocol import TreeProtocol


class TestCorrectness:
    def test_exact_on_all_overlap_regimes(self, rng, overlap_fraction):
        protocol = PrivateCoinIntersection(1 << 20, 64)
        s, t = make_instance(rng, 1 << 20, 64, overlap_fraction)
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_many_seeds(self, rng):
        protocol = PrivateCoinIntersection(1 << 20, 64)
        failures = 0
        for seed in range(50):
            s, t = make_instance(rng, 1 << 20, 64, 0.5)
            if not protocol.run(s, t, seed=seed).correct_for(s, t):
                failures += 1
        assert failures <= 1

    def test_empty(self):
        protocol = PrivateCoinIntersection(1 << 10, 8)
        assert protocol.run(set(), set(), seed=0).alice_output == frozenset()

    def test_huge_universe(self, rng):
        # The whole point of FKS: a 2^60 universe must work and cost barely
        # more than a small one.
        protocol = PrivateCoinIntersection(1 << 60, 32)
        sample = rng.sample(range(1 << 60), 48)
        s = frozenset(sample[:32])
        t = frozenset(sample[16:])
        assert protocol.run(s, t, seed=0).correct_for(s, t)


class TestOverheadAccounting:
    def test_additive_overhead_is_log_k_plus_log_log_n(self):
        # Private-coin cost minus shared-coin cost must be O(log k +
        # log log n), not O(log n): grow n from 2^20 to 2^60 and watch the
        # overhead barely move.
        import random

        rng = random.Random(40)
        k = 64
        overheads = {}
        for log_n in (20, 60):
            n = 1 << log_n
            sample = rng.sample(range(n), 2 * k)
            s = frozenset(sample[:k])
            t = frozenset(sample[k // 2 : k // 2 + k])
            private_bits = (
                PrivateCoinIntersection(n, k).run(s, t, seed=0).total_bits
            )
            shared_bits = TreeProtocol(n, k).run(s, t, seed=0).total_bits
            overheads[log_n] = private_bits - shared_bits
        # tripling log n should not triple the overhead
        assert overheads[60] <= overheads[20] + 16 + abs(overheads[20]) * 0.5

    def test_prefix_does_not_add_rounds(self, rng):
        # "No increase in the number of rounds": the seed prefix rides on
        # Alice's first message.
        k = 64
        s, t = make_instance(rng, 1 << 20, k, 0.5)
        shared_messages = TreeProtocol(1 << 20, k).run(s, t, seed=0).num_messages
        private_messages = (
            PrivateCoinIntersection(1 << 20, k).run(s, t, seed=0).num_messages
        )
        assert private_messages == shared_messages

    def test_seed_bits_default_shape(self):
        protocol = PrivateCoinIntersection(1 << 40, 256)
        expected_max = 2 * (math.ceil(math.log2(256)) + math.ceil(math.log2(40))) + 16
        assert protocol.seed_bits <= expected_max

    def test_custom_inner_factory(self, rng):
        calls = []

        def factory(reduced_universe):
            calls.append(reduced_universe)
            return TreeProtocol(reduced_universe, 32, rounds=2)

        protocol = PrivateCoinIntersection(1 << 50, 32, inner_factory=factory)
        s, t = make_instance(rng, 1 << 50, 32, 0.5)
        assert protocol.run(s, t, seed=0).correct_for(s, t)
        # factory called once per party with the same reduced universe
        assert len(calls) == 2
        assert calls[0] == calls[1]
        assert calls[0] < 1 << 50  # genuinely reduced
