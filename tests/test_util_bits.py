"""Tests for bit strings and the wire codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    BitReader,
    BitString,
    BitWriter,
    decode_delta_sorted_set,
    decode_elias_gamma,
    decode_fixed_list,
    decode_uint,
    encode_delta_sorted_set,
    encode_elias_gamma,
    encode_fixed_list,
    encode_uint,
)


class TestBitString:
    def test_empty(self):
        empty = BitString.empty()
        assert len(empty) == 0
        assert list(empty) == []
        assert str(empty) == ""

    def test_from_bits_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        assert list(BitString.from_bits(bits)) == bits

    def test_from_str(self):
        assert BitString.from_str("1011").value == 0b1011

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitString(4, 2)  # 100 needs 3 bits

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            BitString.from_bits([0, 2])

    def test_concatenation(self):
        left = BitString.from_str("10")
        right = BitString.from_str("011")
        assert str(left + right) == "10011"
        assert len(left + right) == 5

    def test_concat_with_leading_zeros_preserves_length(self):
        left = BitString.from_str("00")
        right = BitString.from_str("001")
        combined = left + right
        assert str(combined) == "00001"

    def test_indexing(self):
        bits = BitString.from_str("10110")
        assert [bits[i] for i in range(5)] == [1, 0, 1, 1, 0]
        assert bits[-1] == 0
        assert bits[-2] == 1

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            BitString.from_str("10")[2]

    def test_slicing(self):
        bits = BitString.from_str("101100")
        assert str(bits[1:4]) == "011"
        assert str(bits[::2]) == "110"

    def test_equality_includes_length(self):
        assert BitString.from_str("01") != BitString.from_str("1")
        assert BitString.from_str("01") != BitString.from_str("001")
        assert BitString.from_str("101") == BitString.from_str("101")

    def test_hashable(self):
        assert len({BitString.from_str("1"), BitString.from_str("1")}) == 1

    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_iteration_roundtrip(self, bits):
        assert list(BitString.from_bits(bits)) == bits


class TestWriterReader:
    def test_uint_roundtrip(self):
        writer = BitWriter()
        writer.write_uint(5, 4)
        writer.write_uint(0, 3)
        writer.write_uint(1023, 10)
        reader = BitReader(writer.finish())
        assert reader.read_uint(4) == 5
        assert reader.read_uint(3) == 0
        assert reader.read_uint(10) == 1023
        reader.expect_exhausted()

    def test_zero_width_uint(self):
        writer = BitWriter()
        writer.write_uint(0, 0)
        assert len(writer.finish()) == 0

    def test_uint_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_uint(8, 3)

    def test_read_past_end(self):
        reader = BitReader(BitString.from_str("1"))
        reader.read_bit()
        with pytest.raises(ValueError):
            reader.read_bit()

    def test_expect_exhausted_fails_on_leftover(self):
        reader = BitReader(BitString.from_str("10"))
        reader.read_bit()
        with pytest.raises(ValueError):
            reader.expect_exhausted()

    def test_write_bits_appends(self):
        writer = BitWriter()
        writer.write_bits(BitString.from_str("001"))
        writer.write_bits(BitString.from_str("10"))
        assert str(writer.finish()) == "00110"

    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(21, 32))))
    def test_many_uints_roundtrip(self, pairs):
        writer = BitWriter()
        for value, width in pairs:
            writer.write_uint(value, width)
        reader = BitReader(writer.finish())
        for value, width in pairs:
            assert reader.read_uint(width) == value
        reader.expect_exhausted()


class TestGamma:
    def test_small_values(self):
        # value -> encoded length must be 2*floor(log2(v+1)) + 1
        for value, expected_len in [(0, 1), (1, 3), (2, 3), (3, 5), (7, 7)]:
            encoded = encode_elias_gamma(value)
            assert len(encoded) == expected_len
            assert decode_elias_gamma(encoded) == value

    def test_gamma_is_self_delimiting(self):
        writer = BitWriter()
        values = [0, 5, 1, 100, 0, 2**20]
        for value in values:
            writer.write_gamma(value)
        reader = BitReader(writer.finish())
        assert [reader.read_gamma() for _ in values] == values
        reader.expect_exhausted()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_elias_gamma(-1)

    @given(st.integers(min_value=0, max_value=2**64))
    def test_roundtrip(self, value):
        assert decode_elias_gamma(encode_elias_gamma(value)) == value

    @given(st.integers(min_value=1, max_value=2**40))
    def test_length_is_logarithmic(self, value):
        # 2 log2(v) + O(1) bits: the "O(log)" header cost codecs charge.
        import math

        assert len(encode_elias_gamma(value)) <= 2 * math.log2(value + 1) + 1


class TestFixedList:
    def test_roundtrip(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        encoded = encode_fixed_list(values, width=4)
        assert decode_fixed_list(encoded, width=4) == values

    def test_empty_list(self):
        encoded = encode_fixed_list([], width=7)
        assert decode_fixed_list(encoded, width=7) == []
        assert len(encoded) == 1  # just the gamma(0) header

    def test_cost_is_count_times_width_plus_header(self):
        values = list(range(16))
        encoded = encode_fixed_list(values, width=10)
        assert len(encoded) == 16 * 10 + len(encode_elias_gamma(16))

    @given(
        st.integers(min_value=1, max_value=16).flatmap(
            lambda w: st.tuples(
                st.just(w), st.lists(st.integers(0, 2**w - 1), max_size=50)
            )
        )
    )
    def test_roundtrip_property(self, width_and_values):
        width, values = width_and_values
        assert decode_fixed_list(encode_fixed_list(values, width), width) == values


class TestUintCodec:
    @given(st.integers(0, 2**32 - 1))
    def test_roundtrip(self, value):
        assert decode_uint(encode_uint(value, 32), 32) == value

    def test_exactness_enforced(self):
        with pytest.raises(ValueError):
            decode_uint(BitString.from_str("101"), 2)


class TestDeltaSortedSet:
    def test_roundtrip_sorted(self):
        elements = [1, 5, 6, 100, 10_000]
        assert decode_delta_sorted_set(encode_delta_sorted_set(elements)) == elements

    def test_input_order_irrelevant(self):
        a = encode_delta_sorted_set([5, 1, 9])
        b = encode_delta_sorted_set([9, 5, 1])
        assert a == b

    def test_empty_set(self):
        assert decode_delta_sorted_set(encode_delta_sorted_set([])) == []

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            encode_delta_sorted_set([3, 3])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_delta_sorted_set([-1])

    def test_cost_scales_with_density_not_universe(self):
        # k elements spread over [n]: ~k * (2 log(n/k) + O(1)) bits.  A dense
        # set must be much cheaper per element than a sparse one.
        dense = encode_delta_sorted_set(range(256))
        sparse = encode_delta_sorted_set(range(0, 256 * 4096, 4096))
        assert len(dense) < len(sparse)
        assert len(dense) <= 3 * 256  # ~1 bit per unit gap
        import math

        assert len(sparse) <= 256 * (2 * math.log2(4096) + 3)

    @given(st.sets(st.integers(0, 10**9), max_size=100))
    def test_roundtrip_property(self, elements):
        decoded = decode_delta_sorted_set(encode_delta_sorted_set(elements))
        assert decoded == sorted(elements)
