"""Unit tests for the composable fault models and the spec parser."""

import random

import pytest

from repro.faults.models import (
    BitFlip,
    Compose,
    Drop,
    Duplicate,
    FaultConfigError,
    FlipEveryMessage,
    FlipOnce,
    MODEL_FACTORIES,
    PlayerCrash,
    ReorderWithinRound,
    Truncate,
    flip_bit,
    parse_fault_spec,
    smoke_model,
)
from repro.util.bits import BitString


class TestFlipBit:
    def test_flip_and_restore(self):
        payload = BitString.from_str("10110")
        flipped = flip_bit(payload, 2)
        assert str(flipped) == "10010"
        assert flip_bit(flipped, 2) == payload

    def test_position_taken_mod_length(self):
        payload = BitString.from_str("10110")
        assert flip_bit(payload, 7) == flip_bit(payload, 2)

    def test_empty_payload_passthrough(self):
        empty = BitString(0, 0)
        assert flip_bit(empty, 3) is empty


class TestRateValidation:
    @pytest.mark.parametrize("factory", [BitFlip, Truncate, Drop, Duplicate,
                                         ReorderWithinRound, PlayerCrash])
    def test_out_of_range_rate_rejected(self, factory):
        with pytest.raises(FaultConfigError):
            factory(1.5)
        with pytest.raises(FaultConfigError):
            factory(-0.1)

    def test_fault_config_error_is_value_error(self):
        assert issubclass(FaultConfigError, ValueError)

    def test_rate_zero_draws_no_coins(self):
        # The smoke plan's load-bearing property: an armed-at-rate-0 model
        # must not consume randomness, or its presence would shift every
        # downstream coin and change schedules of composed nonzero models.
        rng = random.Random(7)
        expected = random.Random(7).random()
        model = smoke_model()
        payload = BitString.from_str("1011")
        for _ in range(50):
            assert model.perturb("alice", payload, rng) is None
        assert rng.random() == expected


class TestChannelModels:
    def test_bitflip_changes_exactly_one_bit(self):
        rng = random.Random(0)
        model = BitFlip(1.0)
        payload = BitString.from_str("1010101010")
        kind, (delivered,) = model.perturb("alice", payload, rng)
        assert kind == "bitflip"
        assert len(delivered) == len(payload)
        assert bin(delivered.value ^ payload.value).count("1") == 1

    def test_bitflip_skips_empty_payloads(self):
        assert BitFlip(1.0).perturb("alice", BitString(0, 0),
                                    random.Random(0)) is None

    def test_truncate_yields_proper_prefix(self):
        rng = random.Random(1)
        payload = BitString.from_str("110011")
        kind, (delivered,) = Truncate(1.0).perturb("bob", payload, rng)
        assert kind == "truncate"
        assert len(delivered) < len(payload)
        assert delivered == payload[: len(delivered)]

    def test_drop_delivers_nothing(self):
        kind, deliveries = Drop(1.0).perturb("alice", BitString(1, 1),
                                             random.Random(0))
        assert kind == "drop"
        assert deliveries == ()

    def test_duplicate_delivers_twice(self):
        payload = BitString.from_str("01")
        kind, deliveries = Duplicate(1.0).perturb("alice", payload,
                                                  random.Random(0))
        assert kind == "duplicate"
        assert deliveries == (payload, payload)

    def test_reorder_shuffles_inbox_in_place(self):
        rng = random.Random(3)
        inbox = [("a", BitString(i, 4)) for i in range(8)]
        original = list(inbox)
        assert ReorderWithinRound(1.0).maybe_reorder(inbox, rng)
        assert sorted(inbox, key=lambda m: m[1].value) == original

    def test_reorder_needs_two_messages(self):
        inbox = [("a", BitString(0, 1))]
        assert not ReorderWithinRound(1.0).maybe_reorder(inbox,
                                                         random.Random(0))


class TestPlayerCrash:
    def test_single_crash_cap(self):
        rng = random.Random(0)
        model = PlayerCrash(1.0)
        fired = [model.maybe_crash(f"p{i}", 0, rng) for i in range(5)]
        assert fired == [True, False, False, False, False]
        assert model.crashes == 1

    def test_target_restricts_victim(self):
        rng = random.Random(0)
        model = PlayerCrash(1.0, target="p2")
        assert not model.maybe_crash("p0", 0, rng)
        assert model.maybe_crash("p2", 0, rng)

    def test_negative_cap_rejected(self):
        with pytest.raises(FaultConfigError):
            PlayerCrash(0.5, max_crashes=-1)


class TestCompose:
    def test_requires_a_model(self):
        with pytest.raises(FaultConfigError):
            Compose()

    def test_kinds_joined_in_model_order(self):
        rng = random.Random(0)
        model = Compose(Drop(0.0), Duplicate(1.0), BitFlip(1.0))
        payload = BitString.from_str("1111")
        kind, deliveries = model.perturb("alice", payload, rng)
        assert kind == "duplicate+bitflip"
        # the duplicate fired first, then bitflip hit each copy it chose to
        assert len(deliveries) == 2

    def test_silent_when_nothing_fires(self):
        model = Compose(Drop(0.0), BitFlip(0.0))
        assert model.perturb("alice", BitString(1, 4),
                             random.Random(0)) is None


class TestPromotedHelpers:
    def test_flip_every_message_raw_injector_interface(self):
        fault = FlipEveryMessage("alice", seed=3)
        payload = BitString.from_str("1010")
        damaged = fault("alice", payload)
        assert damaged != payload and len(damaged) == len(payload)
        assert fault("bob", payload) is payload
        assert fault.faults_injected == 1

    def test_flip_once_fires_exactly_once(self):
        fault = FlipOnce()
        payload = BitString.from_str("1111")
        first = fault("alice", payload)
        assert first != payload
        assert fault("alice", payload) is payload
        assert fault.done

    def test_promoted_helpers_also_speak_the_model_api(self):
        rng = random.Random(0)
        fault = FlipOnce()
        kind, (delivered,) = fault.perturb("alice", BitString.from_str("11"),
                                           rng)
        assert kind == "bitflip" and delivered != BitString.from_str("11")
        assert fault.perturb("alice", BitString.from_str("11"), rng) is None


class TestSpecParser:
    def test_smoke_aliases(self):
        for alias in ("1", "smoke", "on"):
            model, seed = parse_fault_spec(alias)
            assert isinstance(model, Compose)
            assert seed == 0

    def test_single_term(self):
        model, seed = parse_fault_spec("bitflip@0.25")
        assert isinstance(model, BitFlip)
        assert model.rate == 0.25
        assert seed == 0

    def test_composed_terms_with_seed(self):
        model, seed = parse_fault_spec("drop@0.02+duplicate@0.01:seed=7")
        assert isinstance(model, Compose)
        assert [type(m) for m in model.models] == [Drop, Duplicate]
        assert seed == 7

    def test_every_factory_name_parses(self):
        for name in MODEL_FACTORIES:
            model, _ = parse_fault_spec(f"{name}@0.5")
            assert model.rate == 0.5

    @pytest.mark.parametrize("bad", [
        "gremlins@0.1",          # unknown model
        "bitflip",               # missing rate
        "bitflip@lots",          # malformed rate
        "bitflip@2.0",           # out-of-range rate
        "bitflip@0.1:sneed=7",   # bad suffix key
        "bitflip@0.1:seed=x",    # malformed seed
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultConfigError):
            parse_fault_spec(bad)


class TestChurn:
    """Per-player whole-run crash fates with a bounded horizon."""

    def test_rate_validated(self):
        from repro.faults.models import Churn, FaultConfigError

        with pytest.raises(FaultConfigError):
            Churn(1.5)
        with pytest.raises(FaultConfigError):
            Churn(0.5, horizon=0)

    def test_fate_drawn_once_and_persists(self):
        import random

        from repro.faults.models import Churn

        model = Churn(1.0, horizon=4)
        rng = random.Random(7)
        # Rate 1.0: the fate is some round in [0, horizon); once that
        # round arrives the player crashes at every later query too
        # (recovery attempts must not resurrect the fated).
        first_crash = None
        for round_index in range(8):
            if model.maybe_crash("p00000", round_index, rng):
                first_crash = round_index
                break
        assert first_crash is not None and first_crash < 4
        assert model.maybe_crash("p00000", first_crash + 1, rng)
        assert not model.maybe_crash("p00000", 0, rng) or first_crash == 0

    def test_rate_zero_never_crashes(self):
        import random

        from repro.faults.models import Churn

        model = Churn(0.0)
        rng = random.Random(7)
        assert not any(
            model.maybe_crash(f"p{i:05d}", r, rng)
            for i in range(8)
            for r in range(20)
        )

    def test_registered_in_spec_grammar(self):
        from repro.faults.models import Churn, parse_fault_spec

        model, seed = parse_fault_spec("churn@0.3:seed=9")
        assert isinstance(model, Churn)
        assert model.rate == 0.3
        assert seed == 9
