"""Tests for the main verification-tree protocol (Theorem 1.1 / 3.6)."""

import random

import pytest

from conftest import make_instance
from repro.core.tree_protocol import TreeProtocol, expected_bits_bound
from repro.util.iterlog import iterated_log, log_star


class TestCorrectness:
    @pytest.mark.parametrize("rounds", [1, 2, 3, 4])
    def test_exact_on_all_overlap_regimes(self, rng, overlap_fraction, rounds):
        protocol = TreeProtocol(1 << 20, 128, rounds=rounds)
        s, t = make_instance(rng, 1 << 20, 128, overlap_fraction)
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_default_rounds_is_log_star(self):
        protocol = TreeProtocol(1 << 16, 256)
        assert protocol.rounds == log_star(256)

    def test_many_seeds_high_success(self, rng):
        # Success 1 - 1/poly(k): over 80 seeded runs at k = 128 we expect
        # at most a couple of failures.
        protocol = TreeProtocol(1 << 20, 128)
        failures = 0
        for seed in range(80):
            s, t = make_instance(rng, 1 << 20, 128, 0.5)
            if not protocol.run(s, t, seed=seed).correct_for(s, t):
                failures += 1
        assert failures <= 2

    def test_empty_sets(self):
        protocol = TreeProtocol(1 << 10, 8, rounds=2)
        outcome = protocol.run(set(), set(), seed=0)
        assert outcome.alice_output == outcome.bob_output == frozenset()

    def test_singletons(self):
        protocol = TreeProtocol(1 << 10, 1, rounds=1)
        assert protocol.run({5}, {5}, seed=0).alice_output == frozenset({5})
        assert protocol.run({5}, {6}, seed=0).alice_output == frozenset()

    def test_skewed_sizes(self, rng):
        protocol = TreeProtocol(1 << 16, 128, rounds=3)
        s = frozenset(rng.sample(range(1 << 16), 128))
        t = frozenset(list(s)[:2])
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_outputs_sandwiched(self, rng):
        # The one-sided invariant: Alice's output always sits between
        # S n T and S, even on error seeds (checked with a deliberately
        # weak confidence exponent to provoke errors).
        protocol = TreeProtocol(1 << 14, 64, rounds=2, confidence_exponent=1)
        for seed in range(60):
            s, t = make_instance(rng, 1 << 14, 64, 0.5)
            outcome = protocol.run(s, t, seed=seed)
            assert s & t <= outcome.alice_output <= s
            assert s & t <= outcome.bob_output <= t

    def test_agreement_implies_correct(self, rng):
        # Proposition 3.9 end-to-end: whenever the two outputs agree they
        # equal the true intersection (checked under a weak exponent so
        # disagreements actually occur in the sample).
        protocol = TreeProtocol(1 << 14, 64, rounds=2, confidence_exponent=1)
        agreements = wrong_agreements = 0
        for seed in range(120):
            s, t = make_instance(rng, 1 << 14, 64, 0.5)
            outcome = protocol.run(s, t, seed=seed)
            if outcome.alice_output == outcome.bob_output:
                agreements += 1
                if outcome.alice_output != s & t:
                    wrong_agreements += 1
        assert agreements > 0
        assert wrong_agreements == 0


class TestTheorem11Costs:
    def test_round_budget_6r(self, rng):
        # Theorem 1.1: 6r rounds.  (r = 1 is the 2-message hash exchange.)
        for rounds in (1, 2, 3, 4):
            protocol = TreeProtocol(1 << 20, 256, rounds=rounds)
            s, t = make_instance(rng, 1 << 20, 256, 0.5)
            outcome = protocol.run(s, t, seed=0)
            budget = 2 if rounds == 1 else 6 * rounds
            assert outcome.num_messages <= budget

    def test_communication_tracks_k_log_r_k(self):
        # Normalized cost bits / (k * log^(r) k) must stay within a constant
        # band across k for each fixed r.
        rng = random.Random(30)
        for rounds in (1, 2, 3):
            normalized = []
            for k in (64, 256, 1024):
                s, t = make_instance(rng, 1 << 24, k, 0.5)
                bits = (
                    TreeProtocol(1 << 24, k, rounds=rounds)
                    .run(s, t, seed=0)
                    .total_bits
                )
                normalized.append(bits / (k * max(iterated_log(k, rounds), 1.0)))
            assert max(normalized) / min(normalized) < 3.0

    def test_more_rounds_less_communication(self):
        # The tradeoff must actually trade: r = log* k beats r = 1 by a
        # factor ~ log k / constant.
        rng = random.Random(31)
        k = 1024
        s, t = make_instance(rng, 1 << 24, k, 0.5)
        one_round = TreeProtocol(1 << 24, k, rounds=1).run(s, t, seed=0)
        optimal = TreeProtocol(1 << 24, k, rounds=log_star(k)).run(s, t, seed=0)
        assert optimal.total_bits < one_round.total_bits
        assert optimal.num_messages > one_round.num_messages

    def test_cost_independent_of_universe(self):
        rng = random.Random(32)
        k = 128
        s1, t1 = make_instance(rng, 1 << 14, k, 0.5)
        s2, t2 = make_instance(rng, 1 << 44, k, 0.5)
        bits_small = (
            TreeProtocol(1 << 14, k, rounds=3).run(s1, t1, seed=0).total_bits
        )
        bits_large = (
            TreeProtocol(1 << 44, k, rounds=3).run(s2, t2, seed=0).total_bits
        )
        assert abs(bits_large - bits_small) / bits_small < 0.5

    def test_linear_at_optimal_point(self):
        rng = random.Random(33)
        per_k = []
        for k in (256, 1024, 4096):
            s, t = make_instance(rng, 1 << 24, k, 0.5)
            bits = TreeProtocol(1 << 24, k).run(s, t, seed=0).total_bits
            per_k.append(bits / k)
        # O(k): per-element cost bounded and non-increasing band
        assert max(per_k) < 64
        assert max(per_k) / min(per_k) < 2.0


class TestBudgetCutoff:
    def test_generous_budget_never_triggers(self, rng):
        k = 128
        protocol = TreeProtocol(
            1 << 20, k, rounds=3, bit_budget=8 * expected_bits_bound(k, 3)
        )
        s, t = make_instance(rng, 1 << 20, k, 0.5)
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_tiny_budget_aborts_symmetrically(self, rng):
        protocol = TreeProtocol(1 << 20, 128, rounds=3, bit_budget=10)
        s, t = make_instance(rng, 1 << 20, 128, 0.5)
        outcome = protocol.run(s, t, seed=0)
        assert outcome.alice_output is None
        assert outcome.bob_output is None

    def test_expected_bits_bound_monotone_in_k(self):
        assert expected_bits_bound(64, 3) < expected_bits_bound(1024, 3)


class TestValidation:
    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            TreeProtocol(100, 10, rounds=0)

    def test_confidence_exponent_validated(self):
        with pytest.raises(ValueError):
            TreeProtocol(100, 10, confidence_exponent=0)

    def test_universe_exponent_validated(self):
        with pytest.raises(ValueError):
            TreeProtocol(100, 10, universe_exponent=2)

    def test_ablation_exponents_still_correct(self, rng):
        # DESIGN.md ablation: the confidence exponent trades re-run cost for
        # failure probability but must not break correctness w.h.p.
        for exponent in (2, 4, 8):
            protocol = TreeProtocol(1 << 16, 64, rounds=3, confidence_exponent=exponent)
            s, t = make_instance(rng, 1 << 16, 64, 0.5)
            assert protocol.run(s, t, seed=exponent).correct_for(s, t)
