"""Tests for the trivial deterministic exchange (D^(1))."""

import math
import random

import pytest

from conftest import make_instance
from repro.protocols.trivial import TrivialExchangeProtocol


class TestCorrectness:
    def test_exact_on_all_overlap_regimes(self, rng, overlap_fraction):
        protocol = TrivialExchangeProtocol(1 << 16, 128)
        s, t = make_instance(rng, 1 << 16, 128, overlap_fraction)
        outcome = protocol.run(s, t, seed=0)
        assert outcome.correct_for(s, t)

    def test_deterministic_across_seeds(self, rng):
        protocol = TrivialExchangeProtocol(1 << 12, 32)
        s, t = make_instance(rng, 1 << 12, 32, 0.5)
        runs = {
            (outcome := protocol.run(s, t, seed=seed)).total_bits
            for seed in range(5)
        }
        assert len(runs) == 1  # zero randomness: identical cost every time

    def test_empty_sets(self):
        protocol = TrivialExchangeProtocol(100, 10)
        outcome = protocol.run(frozenset(), frozenset(), seed=0)
        assert outcome.alice_output == frozenset()
        assert outcome.bob_output == frozenset()

    def test_one_empty_side(self):
        protocol = TrivialExchangeProtocol(100, 10)
        outcome = protocol.run(frozenset(), {1, 2, 3}, seed=0)
        assert outcome.correct_for(frozenset(), {1, 2, 3})

    def test_single_elements(self):
        protocol = TrivialExchangeProtocol(100, 1)
        assert protocol.run({7}, {7}, seed=0).alice_output == frozenset({7})
        assert protocol.run({7}, {8}, seed=0).alice_output == frozenset()


class TestRoundsAndOutputs:
    def test_two_messages_in_two_output_mode(self, rng):
        protocol = TrivialExchangeProtocol(1 << 10, 16)
        s, t = make_instance(rng, 1 << 10, 16, 0.5)
        assert protocol.run(s, t, seed=0).num_messages == 2

    def test_single_message_mode(self, rng):
        protocol = TrivialExchangeProtocol(1 << 10, 16, both_outputs=False)
        s, t = make_instance(rng, 1 << 10, 16, 0.5)
        outcome = protocol.run(s, t, seed=0)
        assert outcome.num_messages == 1
        assert outcome.alice_output is None
        assert outcome.bob_output == s & t


class TestCommunicationScaling:
    def test_k_log_n_over_k_scaling(self):
        # D^(1) = O(k log(n/k)): per-element cost must track log(n/k).
        rng = random.Random(1)
        k = 128
        costs = {}
        for log_ratio in (2, 6, 10):
            n = k << log_ratio
            s, t = make_instance(rng, n, k, 0.0)
            protocol = TrivialExchangeProtocol(n, k, both_outputs=False)
            costs[log_ratio] = protocol.run(s, t, seed=0).total_bits
        # cost per element ~ 2 log(n/k) + O(1) for gamma-coded gaps
        for log_ratio, bits in costs.items():
            assert bits <= k * (2 * log_ratio + 6)
        assert costs[2] < costs[6] < costs[10]

    def test_within_constant_of_information_bound(self):
        rng = random.Random(2)
        n, k = 1 << 20, 256
        s, t = make_instance(rng, n, k, 0.0)
        protocol = TrivialExchangeProtocol(n, k, both_outputs=False)
        bits = protocol.run(s, t, seed=0).total_bits
        information_bound = math.log2(math.comb(n, k))
        assert bits >= information_bound * 0.9  # can't beat entropy
        assert bits <= information_bound * 4  # gamma-gap overhead is small

    def test_validation(self, rng):
        protocol = TrivialExchangeProtocol(100, 4)
        with pytest.raises(ValueError):
            protocol.run({1, 2, 3, 4, 5}, {1}, seed=0)  # |S| > k
        with pytest.raises(ValueError):
            protocol.run({200}, {1}, seed=0)  # outside universe
