"""Property-based fuzzing of the two-party engine.

Hypothesis generates random-but-consistent protocol *scripts* -- sequences
of (sender, payload-length) steps -- compiles them into a pair of party
coroutines, runs the engine, and checks the accounting invariants:

* total bits = sum of script lengths;
* message count = number of maximal same-sender runs, where zero-length
  sends merge into an open same-sender message but never open one;
* payloads arrive unmodified and in order;
* composition: splitting a script into two `yield from` halves changes
  nothing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.engine import Recv, Send, run_two_party
from repro.util.bits import BitString

script_strategy = st.lists(
    st.tuples(st.sampled_from(["alice", "bob"]), st.integers(0, 48)),
    max_size=30,
)


def compile_script(script):
    """Build (alice_fn, bob_fn) that replay the script faithfully.

    Each step's payload encodes its index so the receiver can verify order
    and integrity.
    """

    def payload_for(index, length):
        value = index % (1 << length) if length else 0
        return BitString(value, length)

    def party(role):
        def fn(ctx):
            received = []
            for index, (sender, length) in enumerate(script):
                if sender == role:
                    yield Send(payload_for(index, length))
                else:
                    received.append((yield Recv()))
            return received

        return fn

    return party("alice"), party("bob")


class TestEngineFuzz:
    @settings(max_examples=120, deadline=None)
    @given(script_strategy)
    def test_accounting_matches_script(self, script):
        alice_fn, bob_fn = compile_script(script)
        outcome = run_two_party(
            alice_fn, bob_fn, alice_input=None, bob_input=None
        )
        assert outcome.total_bits == sum(length for _, length in script)
        # Reference model of the message-counting convention: a nonempty
        # send by a new sender opens a message; a same-sender send (any
        # length) merges into the open one; an empty send by a new sender
        # is delivered but leaves the transcript untouched.
        expected_messages = 0
        open_sender = None
        for sender, length in script:
            if sender == open_sender:
                continue
            if length:
                expected_messages += 1
                open_sender = sender
        assert outcome.num_messages == expected_messages

    @settings(max_examples=120, deadline=None)
    @given(script_strategy)
    def test_payloads_arrive_in_order_and_intact(self, script):
        alice_fn, bob_fn = compile_script(script)
        outcome = run_two_party(
            alice_fn, bob_fn, alice_input=None, bob_input=None
        )
        bob_expected = [
            BitString(i % (1 << length) if length else 0, length)
            for i, (sender, length) in enumerate(script)
            if sender == "alice"
        ]
        assert outcome.bob_output == bob_expected

    @settings(max_examples=60, deadline=None)
    @given(script_strategy, st.integers(0, 30))
    def test_composition_is_transparent(self, script, split_at):
        split_at = min(split_at, len(script))
        first, second = script[:split_at], script[split_at:]

        def composed(role):
            sub_a_alice, sub_a_bob = compile_script(first)
            sub_b_alice, sub_b_bob = compile_script(second)

            def fn(ctx):
                part1 = yield from (
                    sub_a_alice(ctx) if role == "alice" else sub_a_bob(ctx)
                )
                part2 = yield from (
                    sub_b_alice(ctx) if role == "alice" else sub_b_bob(ctx)
                )
                return part1 + part2

            return fn

        direct_alice, direct_bob = compile_script(script)
        direct = run_two_party(
            direct_alice, direct_bob, alice_input=None, bob_input=None
        )
        split = run_two_party(
            composed("alice"), composed("bob"), alice_input=None, bob_input=None
        )
        assert split.total_bits == direct.total_bits
        assert split.num_messages == direct.num_messages
        # payload *contents* are indexed per sub-script, so compare shape
        assert len(split.alice_output) == len(direct.alice_output)
        assert [len(p) for p in split.bob_output] == [
            len(p) for p in direct.bob_output
        ]

    @settings(max_examples=60, deadline=None)
    @given(script_strategy, st.integers(1, 2000))
    def test_budget_trips_iff_exceeded(self, script, budget):
        from repro.comm.errors import ProtocolAborted

        total = sum(length for _, length in script)
        alice_fn, bob_fn = compile_script(script)
        try:
            outcome = run_two_party(
                alice_fn,
                bob_fn,
                alice_input=None,
                bob_input=None,
                max_total_bits=budget,
            )
            assert outcome.total_bits == total <= budget or total <= budget
        except ProtocolAborted as aborted:
            assert total > budget
            assert aborted.bits_used > budget
