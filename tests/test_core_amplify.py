"""Tests for the Section 4 amplification wrapper."""

import pytest

from conftest import make_instance
from repro.comm.errors import ProtocolAborted
from repro.core.amplify import AmplifiedIntersection
from repro.core.tree_protocol import TreeProtocol


class TestCorrectness:
    def test_exact_on_all_overlap_regimes(self, rng, overlap_fraction):
        protocol = AmplifiedIntersection(1 << 20, 128)
        s, t = make_instance(rng, 1 << 20, 128, overlap_fraction)
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_never_wrong_over_many_seeds(self, rng):
        # 1 - 2^-k success: at k = 64, wrongness should be unobservable.
        protocol = AmplifiedIntersection(1 << 16, 64)
        for seed in range(60):
            s, t = make_instance(rng, 1 << 16, 64, 0.5)
            assert protocol.run(s, t, seed=seed).correct_for(s, t)

    def test_amplifies_a_deliberately_weak_inner(self, rng):
        # Inner tree protocol with confidence exponent 1 errs noticeably;
        # the wrapper's equality check must catch and retry every error.
        weak = TreeProtocol(1 << 14, 64, rounds=2, confidence_exponent=1)
        protocol = AmplifiedIntersection(1 << 14, 64, inner=weak)
        for seed in range(60):
            s, t = make_instance(rng, 1 << 14, 64, 0.5)
            assert protocol.run(s, t, seed=seed).correct_for(s, t)

    def test_retries_visible_through_message_count(self, rng):
        # With a weak inner protocol, some seeds must need > 1 attempt,
        # observable as extra messages beyond 6r + 2.
        weak = TreeProtocol(1 << 14, 64, rounds=2, confidence_exponent=1)
        protocol = AmplifiedIntersection(1 << 14, 64, inner=weak)
        single_attempt_budget = 6 * 2 + 2
        message_counts = []
        for seed in range(60):
            s, t = make_instance(rng, 1 << 14, 64, 0.5)
            message_counts.append(protocol.run(s, t, seed=seed).num_messages)
        assert any(count > single_attempt_budget for count in message_counts)
        assert any(count <= single_attempt_budget for count in message_counts)

    def test_budget_aborts_retry_with_fresh_coins(self, rng):
        # An inner budget so small every stage-2 run aborts: the wrapper
        # keeps retrying, and with attempts exhausted raises.
        strangled = TreeProtocol(1 << 14, 64, rounds=2, bit_budget=1)
        protocol = AmplifiedIntersection(
            1 << 14, 64, inner=strangled, max_attempts=3
        )
        s, t = make_instance(rng, 1 << 14, 64, 0.5)
        with pytest.raises(ProtocolAborted):
            protocol.run(s, t, seed=0)


class TestCost:
    def test_expected_overhead_is_small(self, rng):
        # Amplification costs one k-bit check on top of the inner run in
        # the common no-retry case.
        inner = TreeProtocol(1 << 20, 128, rounds=3)
        wrapped = AmplifiedIntersection(1 << 20, 128, inner=inner)
        s, t = make_instance(rng, 1 << 20, 128, 0.5)
        inner_bits = inner.run(s, t, seed=0).total_bits
        wrapped_bits = wrapped.run(s, t, seed=0).total_bits
        assert wrapped_bits <= inner_bits * 1.5 + 2 * 128 + 64

    def test_check_width_parameter(self, rng):
        protocol = AmplifiedIntersection(1 << 16, 64, check_width=128)
        assert protocol.check_width == 128
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_default_inner_is_tree_at_log_star(self):
        protocol = AmplifiedIntersection(1 << 16, 256)
        assert isinstance(protocol.inner, TreeProtocol)
        assert protocol.inner.rounds == 4  # log*(256)
        assert protocol.inner.bit_budget is not None

    def test_rounds_parameter_forwarded(self):
        protocol = AmplifiedIntersection(1 << 16, 256, rounds=2)
        assert protocol.inner.rounds == 2
