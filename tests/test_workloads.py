"""Tests for the workload generators."""

import pytest

from repro.workloads import (
    Distribution,
    MultipartySpec,
    WorkloadSpec,
    generate_multiparty,
    generate_pair,
)
from repro.workloads.twoparty import generate_stream


class TestTwoPartyWorkloads:
    @pytest.mark.parametrize("distribution", list(Distribution))
    def test_sizes_and_overlap_exact(self, distribution):
        spec = WorkloadSpec(1 << 20, 200, 0.25, distribution)
        s, t = generate_pair(spec, seed=0)
        assert len(s) == len(t) == 200
        assert len(s & t) == 50

    @pytest.mark.parametrize("overlap", [0.0, 0.5, 1.0])
    def test_overlap_extremes(self, overlap):
        spec = WorkloadSpec(1 << 16, 64, overlap)
        s, t = generate_pair(spec, seed=3)
        assert len(s & t) == int(round(overlap * 64))

    def test_elements_in_universe(self):
        for distribution in Distribution:
            spec = WorkloadSpec(1 << 12, 100, 0.5, distribution)
            s, t = generate_pair(spec, seed=1)
            assert all(0 <= x < (1 << 12) for x in s | t)

    def test_seeded_reproducibility(self):
        spec = WorkloadSpec(1 << 20, 128, 0.3)
        assert generate_pair(spec, 7) == generate_pair(spec, 7)
        assert generate_pair(spec, 7) != generate_pair(spec, 8)

    def test_clustered_is_actually_clustered(self):
        spec = WorkloadSpec(1 << 30, 256, 0.0, Distribution.CLUSTERED)
        s, _ = generate_pair(spec, seed=2)
        ordered = sorted(s)
        small_gaps = sum(
            1 for a, b in zip(ordered, ordered[1:]) if b - a <= 64
        )
        # most consecutive gaps are within one run
        assert small_gaps > len(ordered) * 0.5

    def test_uniform_is_not_clustered(self):
        spec = WorkloadSpec(1 << 30, 256, 0.0, Distribution.UNIFORM)
        s, _ = generate_pair(spec, seed=2)
        ordered = sorted(s)
        small_gaps = sum(
            1 for a, b in zip(ordered, ordered[1:]) if b - a <= 64
        )
        assert small_gaps < len(ordered) * 0.05

    def test_arithmetic_structure(self):
        spec = WorkloadSpec(1 << 24, 128, 0.0, Distribution.ARITHMETIC)
        s, _ = generate_pair(spec, seed=4)
        # the union of both draws comes from <= 2 progressions; the set of
        # pairwise gap values within one draw must be tiny
        ordered = sorted(s)
        gaps = {b - a for a, b in zip(ordered, ordered[1:])}
        assert len(gaps) < len(ordered) // 4

    def test_stream_yields_distinct_instances(self):
        spec = WorkloadSpec(1 << 16, 32, 0.5)
        stream = generate_stream(spec)
        first = next(stream)
        second = next(stream)
        assert first != second

    def test_protocols_exact_on_every_distribution(self):
        # The protocols' guarantees must not depend on benign inputs; the
        # ARITHMETIC case in particular probes linear-structure hashing.
        from repro.core.tree_protocol import TreeProtocol

        for distribution in Distribution:
            spec = WorkloadSpec(1 << 20, 128, 0.5, distribution)
            s, t = generate_pair(spec, seed=5)
            outcome = TreeProtocol(1 << 20, 128).run(s, t, seed=0)
            assert outcome.correct_for(s, t), distribution

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(10, 20, 0.5)  # universe too small
        with pytest.raises(ValueError):
            WorkloadSpec(1 << 10, 16, 1.5)  # bad overlap
        with pytest.raises(ValueError):
            WorkloadSpec(1 << 10, 0, 0.5)  # empty sets


class TestMultipartyWorkloads:
    def test_planted_core_is_exact(self):
        spec = MultipartySpec(1 << 20, 64, 8, 12)
        sets = generate_multiparty(spec, seed=0)
        assert len(sets) == 8
        assert all(len(player_set) == 64 for player_set in sets)
        assert len(frozenset.intersection(*sets)) == 12

    def test_zero_core(self):
        spec = MultipartySpec(1 << 20, 32, 4, 0)
        sets = generate_multiparty(spec, seed=1)
        assert frozenset.intersection(*sets) == frozenset()

    def test_full_core(self):
        spec = MultipartySpec(1 << 20, 32, 4, 32)
        sets = generate_multiparty(spec, seed=2)
        assert len(set(sets)) == 1  # identical sets

    def test_reproducibility(self):
        spec = MultipartySpec(1 << 20, 32, 4, 8)
        assert generate_multiparty(spec, 3) == generate_multiparty(spec, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultipartySpec(100, 32, 8, 8)  # universe too small
        with pytest.raises(ValueError):
            MultipartySpec(1 << 20, 32, 0, 8)
        with pytest.raises(ValueError):
            MultipartySpec(1 << 20, 32, 4, 40)  # core > set size
