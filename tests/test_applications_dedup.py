"""Tests for the deduplication application."""

import random

from conftest import make_instance
from repro.applications.dedup import (
    find_duplicates,
    find_global_duplicates,
    pairwise_duplicate_matrix,
)


class TestTwoServerDedup:
    def test_exact_duplicates(self, rng):
        a, b = make_instance(rng, 1 << 18, 96, 0.4)
        report = find_duplicates(a, b, universe_size=1 << 18, max_set_size=96)
        assert report.duplicates == a & b
        assert report.count == len(a & b)
        assert report.bits > 0
        assert report.protocol == "verification-tree"

    def test_no_duplicates(self, rng):
        a, b = make_instance(rng, 1 << 18, 64, 0.0)
        report = find_duplicates(a, b, universe_size=1 << 18, max_set_size=64)
        assert report.count == 0


class TestGlobalDedup:
    def test_global_duplicates(self):
        rng = random.Random(0)
        common = set(rng.sample(range(1 << 18), 12))
        servers = [
            frozenset(common | set(rng.sample(range(1 << 18), 40)))
            for _ in range(5)
        ]
        truth = frozenset.intersection(*servers)
        duplicates, accounting = find_global_duplicates(
            servers, universe_size=1 << 18, max_set_size=64
        )
        assert duplicates == truth
        assert accounting["total_bits"] > 0
        assert accounting["rounds"] > 0
        assert accounting["max_player_bits"] <= accounting["total_bits"]


class TestPairwiseMatrix:
    def test_matrix_shape_and_values(self):
        rng = random.Random(1)
        base = rng.sample(range(1 << 16), 90)
        servers = [
            frozenset(base[:40]),
            frozenset(base[20:60]),
            frozenset(base[50:90]),
        ]
        matrix = pairwise_duplicate_matrix(
            servers, universe_size=1 << 16, max_set_size=40
        )
        assert len(matrix) == 3
        for i in range(3):
            assert matrix[i][i] == len(servers[i])
            for j in range(3):
                assert matrix[i][j] == matrix[j][i]
                if i != j:
                    assert matrix[i][j] == len(servers[i] & servers[j])

    def test_single_server(self):
        matrix = pairwise_duplicate_matrix(
            [frozenset({1, 2})], universe_size=10, max_set_size=4
        )
        assert matrix == [[2]]
