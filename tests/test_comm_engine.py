"""Tests for the two-party protocol engine."""

import pytest

from repro.comm.engine import PartyContext, Recv, Send, run_two_party
from repro.comm.errors import ProtocolAborted, ProtocolDeadlock, ProtocolViolation
from repro.util.bits import BitString, decode_uint, encode_uint


def echo_alice(ctx):
    yield Send(encode_uint(ctx.input, 8))
    reply = yield Recv()
    return decode_uint(reply, 8)


def echo_bob(ctx):
    got = yield Recv()
    yield Send(encode_uint(decode_uint(got, 8) + 1, 8))
    return decode_uint(got, 8)


class TestBasicExecution:
    def test_outputs_and_accounting(self):
        outcome = run_two_party(
            echo_alice, echo_bob, alice_input=41, bob_input=None, shared_seed=0
        )
        assert outcome.alice_output == 42
        assert outcome.bob_output == 41
        assert outcome.total_bits == 16
        assert outcome.num_messages == 2

    def test_silent_protocol(self):
        def silent(ctx):
            return ctx.input
            yield  # pragma: no cover - makes this a generator function

        outcome = run_two_party(
            silent, silent, alice_input="a", bob_input="b", shared_seed=0
        )
        assert outcome.alice_output == "a"
        assert outcome.bob_output == "b"
        assert outcome.total_bits == 0
        assert outcome.num_messages == 0

    def test_consecutive_sends_merge_into_one_message(self):
        def chatty_alice(ctx):
            yield Send(BitString.from_str("1"))
            yield Send(BitString.from_str("01"))
            yield Send(BitString.from_str("001"))
            return None

        def quiet_bob(ctx):
            parts = []
            for _ in range(3):
                parts.append((yield Recv()))
            return parts

        outcome = run_two_party(
            chatty_alice, quiet_bob, alice_input=None, bob_input=None
        )
        # 3 Send effects, 1 message (the paper's round convention).
        assert outcome.num_messages == 1
        assert outcome.total_bits == 6
        assert [str(p) for p in outcome.bob_output] == ["1", "01", "001"]

    def test_alternation_counts_messages(self):
        def ping(ctx):
            for _ in range(3):
                yield Send(BitString.from_str("1"))
                yield Recv()
            return None

        def pong(ctx):
            for _ in range(3):
                yield Recv()
                yield Send(BitString.from_str("0"))
            return None

        outcome = run_two_party(ping, pong, alice_input=None, bob_input=None)
        assert outcome.num_messages == 6
        assert outcome.total_bits == 6

    def test_fifo_delivery(self):
        def sender(ctx):
            for i in range(5):
                yield Send(encode_uint(i, 4))
            return None

        def receiver(ctx):
            received = []
            for _ in range(5):
                received.append(decode_uint((yield Recv()), 4))
            return received

        outcome = run_two_party(sender, receiver, alice_input=None, bob_input=None)
        assert outcome.bob_output == [0, 1, 2, 3, 4]


class TestInformationFlow:
    def test_shared_randomness_is_common(self):
        def draw(ctx):
            return ctx.shared.stream("coin").bits(64)
            yield  # pragma: no cover

        outcome = run_two_party(draw, draw, alice_input=None, bob_input=None)
        assert outcome.alice_output == outcome.bob_output

    def test_private_randomness_differs(self):
        def draw(ctx):
            return ctx.private.stream("coin").bits(64)
            yield  # pragma: no cover

        outcome = run_two_party(draw, draw, alice_input=None, bob_input=None)
        assert outcome.alice_output != outcome.bob_output

    def test_roles_are_set(self):
        def who(ctx):
            return ctx.role
            yield  # pragma: no cover

        outcome = run_two_party(who, who, alice_input=None, bob_input=None)
        assert (outcome.alice_output, outcome.bob_output) == ("alice", "bob")


class TestFailureModes:
    def test_deadlock_detected(self):
        def wait(ctx):
            yield Recv()
            return None

        with pytest.raises(ProtocolDeadlock):
            run_two_party(wait, wait, alice_input=None, bob_input=None)

    def test_one_sided_deadlock(self):
        def wait_twice(ctx):
            yield Recv()
            yield Recv()
            return None

        def send_once(ctx):
            yield Send(BitString.from_str("1"))
            return None

        with pytest.raises(ProtocolDeadlock):
            run_two_party(wait_twice, send_once, alice_input=None, bob_input=None)

    def test_undelivered_payload_is_a_violation(self):
        def sends(ctx):
            yield Send(BitString.from_str("1"))
            return None

        def ignores(ctx):
            return None
            yield  # pragma: no cover

        with pytest.raises(ProtocolViolation):
            run_two_party(sends, ignores, alice_input=None, bob_input=None)

    def test_non_bitstring_payload_rejected(self):
        def bad(ctx):
            yield Send("raw string")  # type: ignore[arg-type]
            return None

        def recv(ctx):
            yield Recv()
            return None

        with pytest.raises(ProtocolViolation):
            run_two_party(bad, recv, alice_input=None, bob_input=None)

    def test_bad_effect_rejected(self):
        def weird(ctx):
            yield 42
            return None

        def idle(ctx):
            return None
            yield  # pragma: no cover

        with pytest.raises(ProtocolViolation):
            run_two_party(weird, idle, alice_input=None, bob_input=None)

    def test_budget_abort(self):
        def flood(ctx):
            for _ in range(100):
                yield Send(BitString(0, 64))
            return None

        def drain(ctx):
            for _ in range(100):
                yield Recv()
            return None

        with pytest.raises(ProtocolAborted) as excinfo:
            run_two_party(
                flood, drain, alice_input=None, bob_input=None, max_total_bits=1000
            )
        assert excinfo.value.bits_used > 1000
        assert excinfo.value.budget == 1000

    def test_budget_measured_relative_to_existing_transcript(self):
        from repro.comm.transcript import Transcript

        existing = Transcript()
        existing.record_send("alice", BitString(0, 500))

        def send_some(ctx):
            yield Send(BitString(0, 400))
            return None

        def recv_some(ctx):
            yield Recv()
            return None

        # 400 new bits under a 450-bit budget must pass even though the
        # transcript already carries 500 bits from the enclosing protocol.
        outcome = run_two_party(
            send_some,
            recv_some,
            alice_input=None,
            bob_input=None,
            max_total_bits=450,
            transcript=existing,
        )
        assert outcome.total_bits == 900


class TestComposition:
    def test_yield_from_subprotocol_accumulates_on_one_transcript(self):
        def sub(ctx, value):
            yield Send(encode_uint(value, 8))
            reply = yield Recv()
            return decode_uint(reply, 8)

        def sub_bob(ctx):
            got = yield Recv()
            yield Send(got)
            return None

        def alice(ctx):
            first = yield from sub(ctx, 7)
            second = yield from sub(ctx, 9)
            return first + second

        def bob(ctx):
            yield from sub_bob(ctx)
            yield from sub_bob(ctx)
            return None

        outcome = run_two_party(alice, bob, alice_input=None, bob_input=None)
        assert outcome.alice_output == 16
        assert outcome.total_bits == 32
        assert outcome.num_messages == 4

    def test_explicit_shared_randomness_object(self):
        from repro.util.rng import SharedRandomness

        def draw(ctx):
            return ctx.shared.stream("x").bits(16)
            yield  # pragma: no cover

        shared = SharedRandomness(99)
        outcome = run_two_party(
            draw, draw, alice_input=None, bob_input=None, shared=shared
        )
        assert outcome.alice_output == SharedRandomness(99).stream("x").bits(16)


class TestZeroLengthPayloads:
    # The pinned convention, engine edition: zero-length payloads are
    # *delivered* (a Recv completes and yields a 0-bit BitString) but are
    # free on the transcript -- they never open a message, so they never
    # count toward the round complexity.

    def test_empty_first_send_is_delivered_but_free(self):
        def alice(ctx):
            yield Send(BitString(0, 0))
            yield Send(BitString(5, 3))
            return None

        def bob(ctx):
            first = yield Recv()
            second = yield Recv()
            return (len(first), len(second))

        outcome = run_two_party(alice, bob, alice_input=None, bob_input=None)
        assert outcome.bob_output == (0, 3)
        assert outcome.total_bits == 3
        assert outcome.num_messages == 1

    def test_empty_send_between_rounds_does_not_split_or_open(self):
        def alice(ctx):
            yield Send(BitString(1, 2))
            (yield Recv())
            yield Send(BitString(1, 4))
            return None

        def bob(ctx):
            (yield Recv())
            yield Send(BitString(0, 0))  # empty reply between rounds
            (yield Recv())
            return None

        outcome = run_two_party(alice, bob, alice_input=None, bob_input=None)
        assert outcome.total_bits == 6
        # Bob's empty reply opened nothing, so alice's message is still the
        # open one and her second send merges into it: the exchange counts
        # as ONE message.  Zero information flowed back, so in the
        # round-complexity ledger no round happened in between.
        assert outcome.num_messages == 1
        assert outcome.transcript.bits_sent_by("bob") == 0

    def test_empty_trailing_send_is_free(self):
        # Delivery is still mandatory -- the engine flags undelivered
        # payloads, empty or not -- so alice receives the trailing empty
        # send; it just leaves no trace in the accounting.
        def alice(ctx):
            yield Send(BitString(3, 2))
            trailing = yield Recv()
            return len(trailing)

        def bob(ctx):
            (yield Recv())
            yield Send(BitString(0, 0))
            return None

        outcome = run_two_party(alice, bob, alice_input=None, bob_input=None)
        assert outcome.alice_output == 0
        assert outcome.total_bits == 2
        assert outcome.num_messages == 1
        assert outcome.transcript.senders == ["alice"]
