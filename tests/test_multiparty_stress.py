"""Stress and fuzz tests for the multiparty layer."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.multiparty.binary_tree import BinaryTreeIntersection
from repro.multiparty.coordinator import CoordinatorIntersection
from repro.workloads import MultipartySpec, generate_multiparty


class TestScale:
    def test_thirty_two_players_coordinator(self):
        spec = MultipartySpec(1 << 20, 32, 32, 6)
        sets = generate_multiparty(spec, seed=0)
        result = CoordinatorIntersection(1 << 20, 32).run(sets, seed=0)
        assert result.intersection == frozenset.intersection(*sets)
        # total O(mk): 32 players x 32 elements
        assert result.total_bits < 150 * 32 * 32

    def test_twenty_four_players_binary_tree_grouped(self):
        spec = MultipartySpec(1 << 20, 24, 24, 5)
        sets = generate_multiparty(spec, seed=1)
        result = BinaryTreeIntersection(1 << 20, 24, group_size=8).run(
            sets, seed=0
        )
        assert result.intersection == frozenset.intersection(*sets)

    def test_broadcast_at_scale(self):
        spec = MultipartySpec(1 << 20, 24, 20, 6)
        sets = generate_multiparty(spec, seed=2)
        truth = frozenset.intersection(*sets)
        result = CoordinatorIntersection(1 << 20, 24, broadcast=True).run(
            sets, seed=0
        )
        assert all(out == truth for out in result.outcome.outputs.values())


class TestFuzz:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(2, 7),  # players
        st.integers(0, 8),  # planted core
        st.integers(2, 4),  # group size
        st.integers(0, 3),  # seed
    )
    def test_coordinator_fuzz(self, players, core, group_size, seed):
        spec = MultipartySpec(1 << 14, 16, players, min(core, 16))
        sets = generate_multiparty(spec, seed=seed)
        result = CoordinatorIntersection(
            1 << 14, 16, group_size=group_size
        ).run(sets, seed=seed)
        assert result.intersection == frozenset.intersection(*sets)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(2, 7),
        st.integers(0, 8),
        st.integers(2, 4),
        st.integers(0, 3),
    )
    def test_binary_tree_fuzz(self, players, core, group_size, seed):
        spec = MultipartySpec(1 << 14, 16, players, min(core, 16))
        sets = generate_multiparty(spec, seed=seed)
        result = BinaryTreeIntersection(
            1 << 14, 16, group_size=group_size
        ).run(sets, seed=seed)
        assert result.intersection == frozenset.intersection(*sets)


class TestHeterogeneousSizes:
    def test_mixed_set_sizes(self):
        rng = random.Random(3)
        universe = 1 << 18
        common = frozenset(rng.sample(range(universe), 5))
        sets = []
        for size in (5, 12, 30, 64, 64):
            extra = frozenset(rng.sample(range(universe), size - 5))
            sets.append(common | extra)
        result = CoordinatorIntersection(universe, 64).run(sets, seed=0)
        assert result.intersection == frozenset.intersection(*sets)

    def test_one_empty_player_forces_empty_result(self):
        rng = random.Random(4)
        sets = [
            frozenset(rng.sample(range(1 << 16), 30)),
            frozenset(),
            frozenset(rng.sample(range(1 << 16), 30)),
        ]
        result = CoordinatorIntersection(1 << 16, 32).run(sets, seed=0)
        assert result.intersection == frozenset()

    def test_two_players_reduces_to_two_party(self):
        rng = random.Random(5)
        spec = MultipartySpec(1 << 16, 32, 2, 8)
        sets = generate_multiparty(spec, seed=0)
        coordinator = CoordinatorIntersection(1 << 16, 32).run(sets, seed=0)
        tree = BinaryTreeIntersection(1 << 16, 32).run(sets, seed=0)
        truth = sets[0] & sets[1]
        assert coordinator.intersection == tree.intersection == truth

    def test_rejects_oversized_player(self):
        with pytest.raises(ValueError):
            CoordinatorIntersection(1 << 10, 4).run(
                [{1, 2, 3, 4, 5}, {1}], seed=0
            )
