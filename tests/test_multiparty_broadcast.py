"""Tests for the multiparty result broadcast (all-players-output mode)."""

import random

from repro.multiparty.coordinator import CoordinatorIntersection
from test_multiparty_coordinator import make_multiparty_instance


class TestBroadcast:
    def test_every_player_outputs_the_intersection(self):
        rng = random.Random(0)
        sets, truth = make_multiparty_instance(rng, 1 << 18, 48, 7, 9)
        protocol = CoordinatorIntersection(1 << 18, 48, broadcast=True)
        result = protocol.run(sets, seed=2)
        assert result.intersection == truth
        assert all(
            output == truth for output in result.outcome.outputs.values()
        )

    def test_without_broadcast_members_output_none(self):
        rng = random.Random(1)
        sets, truth = make_multiparty_instance(rng, 1 << 18, 48, 5, 9)
        protocol = CoordinatorIntersection(1 << 18, 48)
        result = protocol.run(sets, seed=0)
        outputs = result.outcome.outputs
        names = sorted(outputs)
        assert outputs[names[0]] == truth
        assert all(outputs[name] is None for name in names[1:])

    def test_broadcast_through_multilevel_recursion(self):
        rng = random.Random(2)
        sets, truth = make_multiparty_instance(rng, 1 << 18, 32, 9, 6)
        protocol = CoordinatorIntersection(
            1 << 18, 32, group_size=3, broadcast=True
        )
        result = protocol.run(sets, seed=1)
        assert all(
            output == truth for output in result.outcome.outputs.values()
        )

    def test_broadcast_adds_one_round_and_linear_bits(self):
        rng = random.Random(3)
        sets, truth = make_multiparty_instance(rng, 1 << 18, 64, 6, 16)
        plain = CoordinatorIntersection(1 << 18, 64).run(sets, seed=4)
        shared = CoordinatorIntersection(1 << 18, 64, broadcast=True).run(
            sets, seed=4
        )
        assert shared.rounds <= plain.rounds + 2
        extra = shared.total_bits - plain.total_bits
        # (m-1) recipients x |result| hash values x O(log mk) bits
        assert 0 < extra <= 5 * len(truth) * 64 + 5 * 64

    def test_empty_intersection_broadcast(self):
        rng = random.Random(4)
        sets, truth = make_multiparty_instance(rng, 1 << 18, 32, 4, 0)
        protocol = CoordinatorIntersection(1 << 18, 32, broadcast=True)
        result = protocol.run(sets, seed=0)
        assert truth == frozenset()
        assert all(
            output == frozenset()
            for output in result.outcome.outputs.values()
        )

    def test_single_player_broadcast_noop(self):
        protocol = CoordinatorIntersection(1 << 10, 8, broadcast=True)
        result = protocol.run([{1, 2}], seed=0)
        assert result.intersection == frozenset({1, 2})
        assert result.total_bits == 0


class TestBinaryTreeBroadcast:
    def test_every_player_outputs_the_intersection(self):
        import random

        from repro.multiparty.binary_tree import BinaryTreeIntersection

        rng = random.Random(10)
        sets, truth = make_multiparty_instance(rng, 1 << 18, 48, 6, 9)
        protocol = BinaryTreeIntersection(1 << 18, 48, broadcast=True)
        result = protocol.run(sets, seed=1)
        assert result.intersection == truth
        assert all(
            output == truth for output in result.outcome.outputs.values()
        )

    def test_multilevel_tree_broadcast(self):
        import random

        from repro.multiparty.binary_tree import BinaryTreeIntersection

        rng = random.Random(11)
        sets, truth = make_multiparty_instance(rng, 1 << 18, 32, 9, 6)
        protocol = BinaryTreeIntersection(
            1 << 18, 32, group_size=4, broadcast=True
        )
        result = protocol.run(sets, seed=2)
        assert all(
            output == truth for output in result.outcome.outputs.values()
        )
