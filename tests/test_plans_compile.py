"""Tests for the plan model and compiler (``repro.plans``).

The load-bearing properties: compilation is a pure function of the plan
document (same plan -> same keys, same seeds), trial seeds depend only on
the cell and trial index (never on how trials are sharded), and shard keys
are sensitive to everything that could change the records.
"""

import pytest

from repro.plans import (
    Plan,
    ProtocolSpec,
    RetrySpec,
    cell_seed,
    compile_plan,
    plan_from_dict,
    plan_to_dict,
)
from repro.workloads import Distribution, WorkloadSpec


def make_plan(**overrides):
    base = dict(
        name="unit",
        protocols=(ProtocolSpec("bucket"),),
        instances=(
            WorkloadSpec(
                universe_size=1 << 12,
                set_size=8,
                overlap_fraction=0.5,
                distribution=Distribution.UNIFORM,
            ),
        ),
        trials=10,
        seed=3,
        shard_size=4,
    )
    base.update(overrides)
    return Plan(**base)


class TestPlanModel:
    def test_round_trip(self):
        plan = make_plan(
            analysis="survival",
            fault_specs=("bitflip@0.02",),
            retry=RetrySpec(max_attempts=3, attempt_bit_budget=4096,
                            adaptive_budget=True),
        )
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError):
            make_plan(analysis="latency")

    def test_cost_analysis_rejects_faults(self):
        with pytest.raises(ValueError):
            make_plan(analysis="cost", fault_specs=("bitflip@0.02",))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            make_plan(protocols=())
        with pytest.raises(ValueError):
            make_plan(instances=())
        with pytest.raises(ValueError):
            make_plan(trials=0)
        with pytest.raises(ValueError):
            make_plan(shard_size=0)


class TestCompile:
    def test_deterministic(self):
        a = compile_plan(make_plan())
        b = compile_plan(make_plan())
        assert a.plan_key == b.plan_key
        assert [s.key for s in a.shards] == [s.key for s in b.shards]
        assert [s.seeds for s in a.shards] == [s.seeds for s in b.shards]

    def test_grid_enumeration(self):
        plan = make_plan(
            protocols=(ProtocolSpec("bucket"), ProtocolSpec("trivial")),
            analysis="survival",
            fault_specs=(None, "bitflip@0.02"),
        )
        compiled = compile_plan(plan)
        assert len(compiled.cells) == 2 * 1 * 2
        # protocols outer, fault specs inner
        labels = [c.label() for c in compiled.cells]
        assert labels == sorted(labels, key=labels.index)
        assert compiled.cells[0].protocol.name == "bucket"
        assert compiled.cells[0].fault_spec is None
        assert compiled.cells[1].fault_spec == "bitflip@0.02"
        assert compiled.cells[2].protocol.name == "trivial"

    def test_shard_partitioning(self):
        compiled = compile_plan(make_plan(trials=10, shard_size=4))
        sizes = [s.trials for s in compiled.shards]
        assert sizes == [4, 4, 2]
        starts = [s.trial_start for s in compiled.shards]
        assert starts == [0, 4, 8]

    def test_trial_seeds_invariant_to_shard_size(self):
        """The seed of trial i is a function of (plan seed, cell, i) only.

        Resharding a plan must never change what gets simulated -- this is
        what makes the aggregate fingerprint comparable across shard sizes.
        """
        fine = compile_plan(make_plan(trials=10, shard_size=1))
        coarse = compile_plan(make_plan(trials=10, shard_size=10))
        fine_seeds = [seed for s in fine.shards for seed in s.seeds]
        coarse_seeds = [seed for s in coarse.shards for seed in s.seeds]
        assert fine_seeds == coarse_seeds

    def test_shard_key_changes_with_shard_size(self):
        a = compile_plan(make_plan(shard_size=4))
        b = compile_plan(make_plan(shard_size=5))
        assert a.shards[0].key != b.shards[0].key

    def test_shard_key_sensitivity(self):
        base = compile_plan(make_plan())
        for overrides in (
            dict(seed=4),
            dict(protocols=(ProtocolSpec("trivial"),)),
            dict(
                instances=(
                    WorkloadSpec(
                        universe_size=1 << 12,
                        set_size=16,
                        overlap_fraction=0.5,
                        distribution=Distribution.UNIFORM,
                    ),
                )
            ),
        ):
            other = compile_plan(make_plan(**overrides))
            assert other.shards[0].key != base.shards[0].key

    def test_shard_key_ignores_plan_name(self):
        """Renaming a plan must still hit the cache: the name is not part
        of what determines the records."""
        a = compile_plan(make_plan(name="one"))
        b = compile_plan(make_plan(name="two"))
        assert [s.key for s in a.shards] == [s.key for s in b.shards]

    def test_retry_spec_keyed_only_for_survival(self):
        cost_a = compile_plan(make_plan(retry=RetrySpec(max_attempts=3)))
        cost_b = compile_plan(make_plan(retry=RetrySpec(max_attempts=5)))
        assert cost_a.shards[0].key == cost_b.shards[0].key

        surv = dict(analysis="survival", fault_specs=("bitflip@0.02",))
        surv_a = compile_plan(
            make_plan(retry=RetrySpec(max_attempts=3), **surv)
        )
        surv_b = compile_plan(
            make_plan(retry=RetrySpec(max_attempts=5), **surv)
        )
        assert surv_a.shards[0].key != surv_b.shards[0].key

    def test_cell_seed_distinct_per_cell(self):
        plan = make_plan(
            protocols=(ProtocolSpec("bucket"), ProtocolSpec("trivial")),
        )
        compiled = compile_plan(plan)
        roots = {cell_seed(plan.seed, c.canonical(plan)) for c in compiled.cells}
        assert len(roots) == len(compiled.cells)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            compile_plan(make_plan(protocols=(ProtocolSpec("quantum"),)))

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(ValueError):
            compile_plan(
                make_plan(analysis="survival", fault_specs=("bitflip@2.0",))
            )


class TestMultipartyPlans:
    """The multiparty-survival analysis axis: separate protocol registry,
    discriminated instance dicts, and untouched two-party shard bytes."""

    def make_multiparty_plan(self, **overrides):
        from repro.workloads import MultipartySpec

        base = dict(
            name="mp-unit",
            analysis="multiparty-survival",
            protocols=(ProtocolSpec("coordinator"),),
            instances=(
                MultipartySpec(
                    universe_size=1 << 12,
                    set_size=8,
                    num_players=8,
                    common_size=3,
                ),
            ),
            fault_specs=("churn@0.3",),
            trials=4,
            seed=3,
            shard_size=2,
        )
        base.update(overrides)
        return Plan(**base)

    def test_compiles_and_round_trips(self):
        plan = self.make_multiparty_plan()
        compiled = compile_plan(plan)
        assert compiled.shards and compiled.cells
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_instance_dict_is_discriminated(self):
        from repro.plans import instance_to_dict
        from repro.workloads import MultipartySpec

        doc = instance_to_dict(
            MultipartySpec(
                universe_size=64, set_size=4, num_players=3, common_size=2
            )
        )
        assert doc["kind"] == "multiparty"
        assert doc["num_players"] == 3

    def test_two_party_instance_dict_shape_unchanged(self):
        # These exact four keys (and no "kind" marker) feed every
        # existing shard content hash; drift here cold-misses every cache.
        from repro.plans import instance_to_dict

        doc = instance_to_dict(
            WorkloadSpec(
                universe_size=64,
                set_size=4,
                overlap_fraction=0.5,
                distribution=Distribution.UNIFORM,
            )
        )
        assert sorted(doc) == [
            "distribution",
            "overlap_fraction",
            "set_size",
            "universe_size",
        ]

    def test_two_party_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            compile_plan(
                self.make_multiparty_plan(protocols=(ProtocolSpec("bucket"),))
            )

    def test_multiparty_protocol_rejected_in_two_party_plan(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            compile_plan(make_plan(protocols=(ProtocolSpec("coordinator"),)))

    def test_workload_spec_instances_rejected(self):
        with pytest.raises(ValueError, match="MultipartySpec"):
            self.make_multiparty_plan(
                instances=(
                    WorkloadSpec(
                        universe_size=1 << 12,
                        set_size=8,
                        overlap_fraction=0.5,
                        distribution=Distribution.UNIFORM,
                    ),
                )
            )

    def test_retry_budget_in_shard_key(self):
        a = compile_plan(
            self.make_multiparty_plan(retry=RetrySpec(max_attempts=4))
        )
        b = compile_plan(
            self.make_multiparty_plan(retry=RetrySpec(max_attempts=8))
        )
        assert a.shards[0].key != b.shards[0].key
