"""Tests for the Corollary 4.2 binary-tree protocol."""

import random

import pytest

from repro.multiparty.binary_tree import BinaryTreeIntersection
from test_multiparty_coordinator import make_multiparty_instance


class TestCorrectness:
    @pytest.mark.parametrize("m", [2, 3, 4, 7, 8])
    def test_exact_for_various_player_counts(self, m):
        rng = random.Random(100 + m)
        sets, truth = make_multiparty_instance(rng, 1 << 16, 64, m, 12)
        result = BinaryTreeIntersection(1 << 16, 64).run(sets, seed=0)
        assert result.intersection == truth

    def test_single_player(self):
        result = BinaryTreeIntersection(1 << 10, 8).run([{4, 5}], seed=0)
        assert result.intersection == frozenset({4, 5})
        assert result.total_bits == 0

    def test_non_power_of_two_group(self):
        rng = random.Random(110)
        sets, truth = make_multiparty_instance(rng, 1 << 16, 32, 5, 8)
        result = BinaryTreeIntersection(1 << 16, 32).run(sets, seed=0)
        assert result.intersection == truth

    def test_multi_level_recursion(self):
        rng = random.Random(111)
        sets, truth = make_multiparty_instance(rng, 1 << 16, 32, 10, 6)
        result = BinaryTreeIntersection(1 << 16, 32, group_size=4).run(sets, seed=0)
        assert result.intersection == truth

    def test_empty_global_intersection(self):
        rng = random.Random(112)
        sets, truth = make_multiparty_instance(rng, 1 << 16, 32, 6, 0)
        result = BinaryTreeIntersection(1 << 16, 32).run(sets, seed=0)
        assert result.intersection == truth == frozenset()

    def test_many_seeds(self):
        rng = random.Random(113)
        protocol = BinaryTreeIntersection(1 << 16, 32)
        for seed in range(10):
            sets, truth = make_multiparty_instance(rng, 1 << 16, 32, 6, 8)
            assert protocol.run(sets, seed=seed).intersection == truth


class TestWorstCaseSpreading:
    def test_max_player_bits_lower_than_coordinator_scheme(self):
        # The point of Corollary 4.2: the heaviest player's load drops
        # relative to the coordinator scheme, at the cost of more rounds.
        from repro.multiparty.coordinator import CoordinatorIntersection

        rng = random.Random(114)
        sets, _ = make_multiparty_instance(rng, 1 << 20, 64, 8, 16)
        coordinator_run = CoordinatorIntersection(1 << 20, 64).run(sets, seed=0)
        tree_run = BinaryTreeIntersection(1 << 20, 64).run(sets, seed=0)
        assert tree_run.outcome.max_player_bits < (
            coordinator_run.outcome.max_player_bits
        )
        assert tree_run.rounds > coordinator_run.rounds

    def test_max_player_bits_scales_with_depth_not_group(self):
        # In the binary tree, the heaviest player joins ceil(log2 m)
        # protocols; max per-player bits should grow ~log m, not ~m.
        rng = random.Random(115)
        k = 32
        heaviest = {}
        for m in (4, 8):
            sets, _ = make_multiparty_instance(rng, 1 << 20, k, m, 8)
            result = BinaryTreeIntersection(1 << 20, k).run(sets, seed=0)
            heaviest[m] = result.outcome.max_player_bits
        # doubling m adds one tree level: ~1 extra pairwise protocol for the
        # heaviest player, nowhere near doubling.
        assert heaviest[8] < 1.8 * heaviest[4]


class TestValidation:
    def test_empty_player_list(self):
        with pytest.raises(ValueError):
            BinaryTreeIntersection(1 << 10, 8).run([], seed=0)

    def test_oversized_set(self):
        with pytest.raises(ValueError):
            BinaryTreeIntersection(1 << 10, 2).run([{1, 2, 3}, {1}], seed=0)
