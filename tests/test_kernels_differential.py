"""Randomized differential suite: every kernel vs its scalar oracle.

The contract of :mod:`repro.kernels.batch` is *value transparency*: the
dispatched kernel (numpy lanes where provably safe, scalar otherwise) must
be bit-for-bit identical to the pure-Python oracle on every input.  This
suite hammers that contract with >= 1000 randomized cases per kernel,
deliberately mixing regimes so each dispatch route gets hit:

* sizes straddling ``MIN_LANES`` (scalar shortcut vs lane path);
* small primes (direct lane route), the Mersenne prime ``2**61 - 1``
  (split-reduction route), primes beyond ``2**64`` (forced fallback);
* keys beyond ``uint64`` (conversion failure -> fallback);
* boundary products around ``2**64`` for the direct-route guard.

On a host without numpy the dispatched leg *is* the oracle, and the suite
degenerates to self-consistency -- still worth running (it pins the scalar
semantics), and the numpy leg is covered by the CI job that installs the
``fast`` extra.
"""

import random

import pytest

from repro.kernels import (
    M61,
    MIN_LANES,
    affine_image_batch,
    affine_image_batch_scalar,
    bucket_assign,
    bucket_assign_scalar,
    equal_mask,
    equal_mask_scalar,
    fingerprint_sweep,
    fingerprint_sweep_segments,
    fingerprint_sweep_segments_scalar,
    mod_batch,
    mod_batch_scalar,
    sort_ints,
    sort_ints_scalar,
)
from repro.protocols.fingerprint import _fingerprint_impl

#: Randomized cases per kernel (the ISSUE floor is 1000).
CASES = 1200

#: Small prime pool for the direct-route regimes.
_PRIMES = [97, 1009, 65521, 16777259, 4294967311, (1 << 45) + 59, M61]


def _random_affine_case(rng):
    """One randomized (xs, mult, shift, prime, range_size) in a random regime."""
    regime = rng.randrange(6)
    n = rng.choice(
        [0, 1, rng.randrange(2, MIN_LANES), rng.randrange(MIN_LANES, 400)]
    )
    if regime == 0:  # small prime, direct lane route
        prime = rng.choice(_PRIMES[:4])
        xs = [rng.randrange(prime) for _ in range(n)]
    elif regime == 1:  # Mersenne route: prime == M61, operands below it
        prime = M61
        xs = [rng.randrange(M61) for _ in range(n)]
    elif regime == 2:  # beyond-lane prime: forced scalar fallback
        prime = (1 << rng.randrange(64, 90)) + rng.choice([13, 57, 111])
        xs = [rng.randrange(1 << 63) for _ in range(n)]
    elif regime == 3:  # keys beyond uint64: conversion fallback
        prime = rng.choice(_PRIMES)
        xs = [rng.randrange(1 << 100) for _ in range(n)]
    elif regime == 4:  # boundary: mult * max_x + shift straddles 2**64
        prime = rng.choice(_PRIMES)
        max_x = rng.randrange(1, 1 << 32)
        mult = ((1 << 64) // max(max_x, 1)) + rng.randrange(-2, 3)
        mult = max(1, min(mult, prime - 1))
        shift = rng.randrange(prime)
        xs = [rng.randrange(max_x + 1) for _ in range(n)]
        range_size = rng.choice([1, 2, 1000, prime, 1 << 70])
        return xs, mult, shift, prime, range_size
    else:  # mixed small values, tiny ranges
        prime = rng.choice(_PRIMES)
        xs = [rng.randrange(min(prime, 1 << 24)) for _ in range(n)]
    mult = rng.randrange(1, min(prime, 1 << 62))
    shift = rng.randrange(min(prime, 1 << 62))
    range_size = rng.choice(
        [1, 2, rng.randrange(2, 1 << 20), prime, (1 << 64) - 1, 1 << 70]
    )
    return xs, mult, shift, prime, range_size


def test_affine_image_batch_differential():
    rng = random.Random(0xA5F1)
    for case in range(CASES):
        xs, mult, shift, prime, range_size = _random_affine_case(rng)
        got = affine_image_batch(xs, mult, shift, prime, range_size)
        want = affine_image_batch_scalar(xs, mult, shift, prime, range_size)
        assert got == want, (
            f"case {case}: affine mismatch "
            f"(n={len(xs)}, mult={mult}, shift={shift}, prime={prime}, "
            f"range={range_size})"
        )


def test_bucket_assign_differential():
    rng = random.Random(0xB0C4)
    for case in range(CASES):
        xs, mult, shift, prime, _ = _random_affine_case(rng)
        buckets = rng.choice([1, 2, 7, 64, 257, 1 << 16])
        got = bucket_assign(xs, mult, shift, prime, buckets)
        want = bucket_assign_scalar(xs, mult, shift, prime, buckets)
        assert got == want, f"case {case}: bucket mismatch (buckets={buckets})"


def test_mod_batch_differential():
    rng = random.Random(0x30D5)
    for case in range(CASES):
        n = rng.choice(
            [0, 1, rng.randrange(2, MIN_LANES), rng.randrange(MIN_LANES, 400)]
        )
        bits = rng.choice([8, 24, 32, 61, 63, 64, 80, 100])
        xs = [rng.randrange(1 << bits) for _ in range(n)]
        modulus = rng.choice(
            [1, 2, 97, 65521, M61, (1 << 64) - 59, (1 << 70) + 9]
        )
        got = mod_batch(xs, modulus)
        want = mod_batch_scalar(xs, modulus)
        assert got == want, (
            f"case {case}: mod mismatch (bits={bits}, modulus={modulus})"
        )


def test_equal_mask_differential():
    rng = random.Random(0xE9A1)
    for case in range(CASES):
        n = rng.choice(
            [0, 1, rng.randrange(2, MIN_LANES), rng.randrange(MIN_LANES, 400)]
        )
        bits = rng.choice([8, 16, 61, 64, 100])
        left = [rng.randrange(1 << bits) for _ in range(n)]
        # Mix exact copies, perturbed entries, and fresh draws.
        right = [
            value
            if rng.random() < 0.5
            else (value + 1 if rng.random() < 0.5 else rng.randrange(1 << bits))
            for value in left
        ]
        got = equal_mask(left, right)
        want = equal_mask_scalar(left, right)
        assert got == want, f"case {case}: mask mismatch (bits={bits})"


def test_sort_ints_differential():
    rng = random.Random(0x5047)
    for case in range(CASES):
        n = rng.choice(
            [0, 1, rng.randrange(2, MIN_LANES), rng.randrange(MIN_LANES, 400)]
        )
        bits = rng.choice([8, 24, 61, 64, 90])
        xs = [rng.randrange(1 << bits) for _ in range(n)]
        assert sort_ints(xs) == sort_ints_scalar(xs), (
            f"case {case}: sort mismatch (n={n}, bits={bits})"
        )


def test_fingerprint_sweep_differential():
    rng = random.Random(0xF19E)
    checked = 0
    while checked < 1000:
        salt = bytes(rng.randrange(256) for _ in range(32))
        width = rng.choice([1, 7, 8, 16, 64, 255, 256, 257, 300])
        payloads = [
            bytes(rng.randrange(256) for _ in range(rng.randrange(0, 40)))
            for _ in range(rng.randrange(1, 20))
        ]
        got = fingerprint_sweep(salt, width, payloads)
        want = [_fingerprint_impl(salt, width, data) for data in payloads]
        assert got == want, f"sweep mismatch at width={width}"
        checked += len(payloads)


def test_fingerprint_sweep_segments_differential():
    # The pooled per-tick dispatch: random segment counts, salts, widths
    # (both digest routes), and payload shapes including empty segments.
    rng = random.Random(0x5E67)
    checked = 0
    while checked < 1000:
        segments = []
        for _ in range(rng.randrange(0, 8)):
            salt = bytes(rng.randrange(256) for _ in range(32))
            width = rng.choice([1, 7, 8, 16, 64, 255, 256, 257, 300, 1000])
            payloads = [
                bytes(rng.randrange(256) for _ in range(rng.randrange(0, 40)))
                for _ in range(rng.randrange(0, 10))
            ]
            segments.append((salt, width, payloads))
        got = fingerprint_sweep_segments(segments)
        want = fingerprint_sweep_segments_scalar(segments)
        oracle = [
            [_fingerprint_impl(salt, width, data) for data in payloads]
            for salt, width, payloads in segments
        ]
        assert got == want == oracle
        checked += sum(len(p) for _, _, p in segments) or 1


def test_dispatched_equals_forced_scalar_end_to_end():
    """One protocol-shaped sweep: the dispatch decision itself (not just the
    lane math) must be invisible -- same hash images with the backend on
    and forced off."""
    from repro.kernels import scalar_only

    rng = random.Random(7)
    xs = [rng.randrange(1 << 24) for _ in range(2048)]
    args = (48271, 11, 16777259, 1 << 20)
    fast = affine_image_batch(xs, *args)
    with scalar_only():
        slow = affine_image_batch(xs, *args)
    assert fast == slow


@pytest.mark.parametrize("seed", range(5))
def test_protocol_outcomes_backend_invariant(seed):
    """Whole-protocol value transparency: a tree-protocol run produces the
    identical outcome (result, bits, messages) with kernels dispatched and
    forced scalar."""
    from repro.core.tree_protocol import TreeProtocol
    from repro.kernels import scalar_only
    from repro.workloads import make_instance

    rng = random.Random(seed)
    alice, bob = make_instance(rng, 1 << 20, 192, 0.5)
    protocol = TreeProtocol(1 << 20, 192, rounds=2)
    fast = protocol.run(alice, bob, seed=seed)
    with scalar_only():
        slow = protocol.run(alice, bob, seed=seed)
    assert fast.alice_output == slow.alice_output
    assert fast.bob_output == slow.bob_output
    assert fast.total_bits == slow.total_bits
    assert fast.num_messages == slow.num_messages
