"""Tests for the Monte-Carlo measurement helper."""

from repro.analysis.empirical import measure_protocol
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.trivial import TrivialExchangeProtocol
from repro.workloads import WorkloadSpec


class TestMeasureProtocol:
    def test_aggregates_trials(self):
        spec = WorkloadSpec(1 << 16, 64, 0.5)
        report = measure_protocol(
            TreeProtocol(1 << 16, 64), spec, trials=8, first_seed=0
        )
        assert report.trials == 8
        assert report.success_rate == 1.0
        assert report.bits.mean > 0
        assert report.messages.maximum <= 6 * 4

    def test_replayable(self):
        spec = WorkloadSpec(1 << 16, 64, 0.5)
        protocol = TreeProtocol(1 << 16, 64)
        a = measure_protocol(protocol, spec, trials=5)
        b = measure_protocol(protocol, spec, trials=5)
        assert a.bits.mean == b.bits.mean

    def test_fixed_instance_mode_isolates_protocol_randomness(self):
        spec = WorkloadSpec(1 << 16, 64, 0.5)
        deterministic = TrivialExchangeProtocol(1 << 16, 64)
        report = measure_protocol(
            deterministic,
            spec,
            trials=6,
            fresh_instance_per_trial=False,
        )
        # same instance + deterministic protocol = identical cost each time
        assert report.bits.minimum == report.bits.maximum

    def test_fresh_instances_vary_cost_for_trivial(self):
        spec = WorkloadSpec(1 << 16, 64, 0.5)
        deterministic = TrivialExchangeProtocol(1 << 16, 64)
        report = measure_protocol(deterministic, spec, trials=8)
        assert report.bits.minimum < report.bits.maximum

    def test_budget_forwarding(self):
        import pytest

        from repro.comm.errors import ProtocolAborted

        spec = WorkloadSpec(1 << 16, 64, 0.5)
        with pytest.raises(ProtocolAborted):
            measure_protocol(
                TreeProtocol(1 << 16, 64),
                spec,
                trials=2,
                max_total_bits=5,
            )
