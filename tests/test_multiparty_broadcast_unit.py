"""Direct unit tests of the broadcast building blocks (hand-driven)."""

import pytest

from repro.comm.errors import ProtocolViolation
from repro.multiparty.broadcast import (
    await_broadcast,
    broadcast_hash,
    send_broadcast,
)
from repro.multiparty.network import PlayerContext
from repro.util.rng import PrivateRandomness, SharedRandomness


def make_ctx(name, players, seed=0):
    return PlayerContext(
        name=name,
        index=players.index(name),
        players=tuple(players),
        input=None,
        shared=SharedRandomness(seed),
        private=PrivateRandomness(seed + 1),
    )


PLAYERS = ["p0", "p1", "p2"]
N, K = 1 << 16, 32


class TestBroadcastHash:
    def test_all_players_derive_the_same_function(self):
        functions = [
            broadcast_hash(make_ctx(name, PLAYERS), N, K) for name in PLAYERS
        ]
        for element in range(0, N, 997):
            images = {fn(element) for fn in functions}
            assert len(images) == 1

    def test_range_scales_with_players_and_k(self):
        small = broadcast_hash(make_ctx("p0", PLAYERS), N, 8)
        large = broadcast_hash(make_ctx("p0", PLAYERS * 4), N, 8)
        assert large.range_size >= small.range_size


class TestSendAwaitRoundtrip:
    def drive_send(self, ctx, result):
        gen = send_broadcast(ctx, result, N, K)
        outbox = next(gen)
        with pytest.raises(StopIteration):
            gen.send(None)
        return outbox

    def test_roundtrip(self):
        result = frozenset({5, 99, 1234})
        sender_ctx = make_ctx("p0", PLAYERS)
        outbox = self.drive_send(sender_ctx, result)
        assert {dst for dst, _ in outbox} == {"p1", "p2"}

        # p1 holds a superset of the result; feeding it the payload must
        # recover exactly the result.
        receiver_ctx = make_ctx("p1", PLAYERS)
        own = result | {7, 8, 60000}
        gen = await_broadcast(receiver_ctx, own, [], N, K)
        assert next(gen) == []  # waiting
        payload = [entry for entry in outbox if entry[0] == "p1"][0][1]
        with pytest.raises(StopIteration) as stop:
            gen.send([("p0", payload)])
        assert stop.value.value == result

    def test_strays_consumed_first(self):
        result = frozenset({10, 20})
        outbox = self.drive_send(make_ctx("p0", PLAYERS), result)
        payload = [entry for entry in outbox if entry[0] == "p2"][0][1]
        strays = [("p0", payload)]
        gen = await_broadcast(
            make_ctx("p2", PLAYERS), result | {30}, strays, N, K
        )
        with pytest.raises(StopIteration) as stop:
            next(gen)  # resolves immediately from the stray
        assert stop.value.value == result
        assert strays == []  # consumed

    def test_unexpected_sender_rejected(self):
        gen = await_broadcast(
            make_ctx("p1", PLAYERS), frozenset({1}), [], N, K
        )
        next(gen)
        from repro.util.bits import BitString

        with pytest.raises(ProtocolViolation):
            gen.send([("p2", BitString(0, 4))])

    def test_empty_result_broadcast(self):
        outbox = self.drive_send(make_ctx("p0", PLAYERS), frozenset())
        payload = outbox[0][1]
        gen = await_broadcast(
            make_ctx("p1", PLAYERS), frozenset({1, 2}), [], N, K
        )
        next(gen)
        with pytest.raises(StopIteration) as stop:
            gen.send([("p0", payload)])
        assert stop.value.value == frozenset()
