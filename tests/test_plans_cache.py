"""Tests for the content-addressed shard cache (``repro.plans.cache``)."""

import json
import os

import pytest

from repro.plans import PLAN_CACHE_ENV_VAR, ShardCache, cache_from_env

KEY_A = "a" * 64
KEY_B = "b" * 64


class TestShardCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert cache.get(KEY_A) is None
        records = [[1, 2, True], [3, 4, False]]
        cache.put(KEY_A, records)
        assert cache.get(KEY_A) == records
        assert cache.get(KEY_B) is None

    def test_objects_are_sharded_by_prefix(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.put(KEY_A, [])
        assert (tmp_path / "objects" / KEY_A[:2] / f"{KEY_A}.json").exists()

    def test_corrupt_object_is_a_miss(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.put(KEY_A, [[1]])
        path = tmp_path / "objects" / KEY_A[:2] / f"{KEY_A}.json"
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(KEY_A) is None

    def test_foreign_schema_is_a_miss(self, tmp_path):
        """An object written under a different plan schema version must not
        be served: a schema bump invalidates the whole store."""
        cache = ShardCache(tmp_path)
        cache.put(KEY_A, [[1]])
        path = tmp_path / "objects" / KEY_A[:2] / f"{KEY_A}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["plan_schema"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(KEY_A) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ShardCache(tmp_path)
        cache.put(KEY_A, [[1]])
        path = tmp_path / "objects" / KEY_A[:2] / f"{KEY_A}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["key"] = KEY_B
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(KEY_A) is None

    def test_journal_round_trip(self, tmp_path):
        cache = ShardCache(tmp_path)
        plan_key = "p" * 64
        cache.append_journal(plan_key, {"shard": 0, "key": KEY_A})
        cache.append_journal(plan_key, {"shard": 1, "key": KEY_B})
        entries = cache.read_journal(plan_key)
        assert [e["shard"] for e in entries] == [0, 1]

    def test_journal_skips_torn_tail(self, tmp_path):
        """A kill mid-append leaves a torn final line; replay must skip it
        instead of failing the whole resume."""
        cache = ShardCache(tmp_path)
        plan_key = "p" * 64
        cache.append_journal(plan_key, {"shard": 0})
        journal = tmp_path / "journal" / f"{plan_key}.jsonl"
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"shard": 1, "ke')
        assert [e["shard"] for e in cache.read_journal(plan_key)] == [0]

    def test_empty_journal(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert cache.read_journal("q" * 64) == []


class TestCacheFromEnv:
    def _with_env(self, monkeypatch, value):
        if value is None:
            monkeypatch.delenv(PLAN_CACHE_ENV_VAR, raising=False)
        else:
            monkeypatch.setenv(PLAN_CACHE_ENV_VAR, value)
        return cache_from_env()

    def test_unset_disables(self, monkeypatch):
        assert self._with_env(monkeypatch, None) is None

    def test_empty_disables(self, monkeypatch):
        assert self._with_env(monkeypatch, "") is None

    def test_zero_disables(self, monkeypatch):
        assert self._with_env(monkeypatch, "0") is None

    def test_path_enables(self, monkeypatch, tmp_path):
        cache = self._with_env(monkeypatch, str(tmp_path / "cache"))
        assert isinstance(cache, ShardCache)
        cache.put(KEY_A, [[1]])
        assert cache.get(KEY_A) == [[1]]
