"""Tests for the Fact 3.5 equality protocol."""

import pytest

from repro.comm.engine import run_two_party
from repro.protocols.equality import (
    EqualityProtocol,
    equality_error_exponent,
    run_equality,
)


class TestErrorExponent:
    def test_matches_inverse_failure(self):
        assert equality_error_exponent(1024.0) == 10
        assert equality_error_exponent(1000.0) == 10  # ceil
        assert equality_error_exponent(2.0) == 2  # clamped at minimum

    def test_clamp_floor(self):
        assert equality_error_exponent(1.0) == 2
        assert equality_error_exponent(0.5) == 2
        assert equality_error_exponent(1.5, minimum=5) == 5


class TestEqualityProtocol:
    def test_equal_values_accepted_with_certainty(self):
        # Fact 3.5 property 1: x == y => both output 1 with probability 1.
        protocol = EqualityProtocol(width=3)  # even a tiny width
        for seed in range(50):
            outcome = protocol.run((1, 2, 3), (1, 2, 3), seed=seed)
            assert outcome.alice_output is True
            assert outcome.bob_output is True

    def test_unequal_values_rejected_whp(self):
        protocol = EqualityProtocol(width=24)
        for seed in range(50):
            outcome = protocol.run("value-a", "value-b", seed=seed)
            assert outcome.alice_output is False
            assert outcome.bob_output is False

    def test_verdict_is_common_knowledge(self):
        protocol = EqualityProtocol(width=8)
        for seed in range(30):
            outcome = protocol.run(frozenset({1}), frozenset({2}), seed=seed)
            assert outcome.alice_output == outcome.bob_output

    def test_communication_is_width_plus_one(self):
        # Fact 3.5: O(k) bits total, two messages.
        protocol = EqualityProtocol(width=48)
        outcome = protocol.run("x", "y", seed=0)
        assert outcome.total_bits == 49
        assert outcome.num_messages == 2

    def test_false_accept_rate_matches_width(self):
        protocol_width = 5
        false_accepts = 0
        trials = 800
        for seed in range(trials):
            protocol = EqualityProtocol(width=protocol_width)
            outcome = protocol.run(seed, seed + 10**6, seed=seed)
            if outcome.alice_output:
                false_accepts += 1
        assert false_accepts / trials == pytest.approx(
            2**-protocol_width, abs=0.03
        )

    def test_works_on_sets(self):
        protocol = EqualityProtocol(width=32)
        assert protocol.run({3, 1}, {1, 3}, seed=0).alice_output is True

    def test_width_validation(self):
        with pytest.raises(ValueError):
            EqualityProtocol(width=0)


class TestPolynomialMethod:
    """The standard-model variant (no random-oracle idealization)."""

    def test_equal_always_accepted(self):
        protocol = EqualityProtocol(width=8, method="polynomial")
        for seed in range(30):
            outcome = protocol.run((1, 2, 3), (1, 2, 3), seed=seed)
            assert outcome.alice_output is True

    def test_unequal_rejected_whp(self):
        protocol = EqualityProtocol(width=24, method="polynomial")
        for seed in range(30):
            outcome = protocol.run("value-a", "value-b", seed=seed)
            assert outcome.alice_output is False

    def test_different_lengths_certainly_unequal(self):
        protocol = EqualityProtocol(width=4, method="polynomial")
        # even at a tiny width, a length mismatch is detected with certainty
        for seed in range(30):
            outcome = protocol.run("short", "much longer value", seed=seed)
            assert outcome.alice_output is False

    def test_cost_overhead_is_logarithmic(self):
        oracle = EqualityProtocol(width=32)
        polynomial = EqualityProtocol(width=32, method="polynomial")
        value = tuple(range(100))
        oracle_bits = oracle.run(value, value, seed=0).total_bits
        polynomial_bits = polynomial.run(value, value, seed=0).total_bits
        assert polynomial_bits > oracle_bits  # the standard-model tax...
        assert polynomial_bits < oracle_bits + 64  # ...is O(log) bits

    def test_false_accept_rate_bounded(self):
        width = 6
        false_accepts = 0
        trials = 500
        for seed in range(trials):
            protocol = EqualityProtocol(width=width, method="polynomial")
            if protocol.run(seed, seed + 10**6, seed=seed).alice_output:
                false_accepts += 1
        assert false_accepts / trials <= 2.0**-width + 0.03

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            EqualityProtocol(width=4, method="telepathic")


class TestComposableEquality:
    def test_inside_larger_coroutine(self):
        def alice(ctx):
            first = yield from run_equality(ctx, "same", width=16, label="a")
            second = yield from run_equality(ctx, "left", width=16, label="b")
            return (first, second)

        def bob(ctx):
            first = yield from run_equality(ctx, "same", width=16, label="a")
            second = yield from run_equality(ctx, "right", width=16, label="b")
            return (first, second)

        outcome = run_two_party(alice, bob, alice_input=None, bob_input=None)
        assert outcome.alice_output == (True, False)
        assert outcome.bob_output == (True, False)
        assert outcome.num_messages == 4
        assert outcome.total_bits == 2 * 17

    def test_labels_isolate_randomness(self):
        # The same pair of unequal values tested under many labels should
        # produce independent verdicts; with width 2 we expect some false
        # accepts across labels, proving the salts differ.
        def party(ctx):
            verdicts = []
            for i in range(64):
                verdict = yield from run_equality(
                    ctx, ctx.input, width=2, label=f"t{i}"
                )
                verdicts.append(verdict)
            return verdicts

        outcome = run_two_party(party, party, alice_input="p", bob_input="q")
        assert any(outcome.alice_output)  # some 1/4-probability false accepts
        assert not all(outcome.alice_output)
