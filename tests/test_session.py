"""Tests for the long-lived session façade."""

import math
from fractions import Fraction

from conftest import make_instance
from repro.perf.executor import derive_seed
from repro.session import IntersectionSession


class TestOperations:
    def test_intersect(self, rng):
        session = IntersectionSession(1 << 18, 64)
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        assert session.intersect(s, t) == s & t

    def test_jaccard(self, rng):
        session = IntersectionSession(1 << 18, 64)
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        assert session.jaccard(s, t) == Fraction(len(s & t), len(s | t))
        assert session.jaccard(set(), set()) == Fraction(1)

    def test_contains_any(self, rng):
        session = IntersectionSession(1 << 18, 64)
        s, t = make_instance(rng, 1 << 18, 64, 0.0)
        assert session.contains_any(s, t) is False
        s2, t2 = make_instance(rng, 1 << 18, 64, 0.2)
        assert session.contains_any(s2, t2) is True

    def test_intersection_size(self, rng):
        session = IntersectionSession(1 << 18, 64)
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        assert session.intersection_size(s, t) == len(s & t)


class TestAccounting:
    def test_history_accumulates(self, rng):
        session = IntersectionSession(1 << 18, 64)
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        session.intersect(s, t)
        session.jaccard(s, t)
        session.contains_any(s, t)
        stats = session.stats()
        assert stats.operations == 3
        assert [record.kind for record in stats.history] == [
            "intersect",
            "jaccard",
            "contains-any",
        ]
        assert stats.total_bits == sum(r.bits for r in stats.history)
        assert stats.mean_bits == stats.total_bits / 3

    def test_idle_session_mean_is_nan(self):
        # nan, not 0: an idle session has no mean, and a fabricated 0
        # would read as "operations are free" in a dashboard averaging
        # over sessions.
        session = IntersectionSession(1 << 10, 8)
        assert session.stats().operations == 0
        assert math.isnan(session.stats().mean_bits)

    def test_record_operation_bills_external_results(self, rng):
        # The coalescing server executes operations out-of-session and
        # bills them back; accounting must not care who executed.
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        direct = IntersectionSession(1 << 18, 64, seed=9)
        billed = IntersectionSession(1 << 18, 64, seed=9)
        result = direct._run("intersect", s, t)
        billed.record_operation("intersect", result)
        assert billed.stats().history == direct.stats().history
        assert billed.stats().total_bits == direct.stats().total_bits

    def test_repeated_identical_queries_draw_fresh_coins(self, rng):
        # Same inputs twice: per-operation seeds differ, so transcripts may
        # differ, and both must be exact.
        session = IntersectionSession(1 << 18, 64)
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        first = session.intersect(s, t)
        second = session.intersect(s, t)
        assert first == second == s & t
        history = session.stats().history
        assert history[0].index == 0 and history[1].index == 1

    def test_sessions_replayable(self, rng):
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        a = IntersectionSession(1 << 18, 64, seed=9)
        b = IntersectionSession(1 << 18, 64, seed=9)
        a.intersect(s, t)
        b.intersect(s, t)
        assert a.stats().total_bits == b.stats().total_bits

    def test_repr(self):
        session = IntersectionSession(1 << 10, 8)
        assert "ops=0" in repr(session)


class TestSeedLineage:
    def test_operation_seed_is_shared_lineage(self):
        # The session's per-operation seed IS the shared derive_seed
        # schedule -- pinned to a literal so any re-derivation through a
        # different code path (the coalescing server, the plan layer)
        # breaks loudly here.
        session = IntersectionSession(1 << 10, 8, seed=0)
        assert session.operation_seed(0) == derive_seed(0, 0)
        assert session.operation_seed(0) == 1819438799946339871

    def test_operation_seed_defaults_to_next(self, rng):
        session = IntersectionSession(1 << 18, 64)
        assert session.operation_seed() == derive_seed(0, 0)
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        session.intersect(s, t)
        assert session.operation_seed() == derive_seed(0, 1)


class TestSessionModes:
    def test_rounds_fixed_session_wide(self, rng):
        session = IntersectionSession(1 << 18, 64, rounds=1)
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        session.intersect(s, t)
        assert session.stats().history[0].protocol == "one-round-hashing"
        assert session.stats().history[0].messages <= 2

    def test_amplified_session(self, rng):
        session = IntersectionSession(1 << 18, 64, amplified=True)
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        assert session.intersect(s, t) == s & t
        assert session.stats().history[0].protocol == "amplified-intersection"

    def test_private_session(self, rng):
        session = IntersectionSession(1 << 18, 64, model="private")
        s, t = make_instance(rng, 1 << 18, 64, 0.5)
        assert session.intersect(s, t) == s & t
