"""Tests for the tree-protocol failure-bound calculator."""

import pytest

from conftest import make_instance
from repro.analysis.failure_bounds import tree_failure_bound
from repro.core.tree_protocol import TreeProtocol


class TestBoundStructure:
    def test_stage_chain_shape(self):
        bound = tree_failure_bound(256, 3)
        assert len(bound.stages) == 3
        assert [entry.stage for entry in bound.stages] == [0, 1, 2]

    def test_final_stage_is_strongest(self):
        # Stage r-1 tests at error 1/k^4: the final leaf error must be the
        # smallest in the chain.
        bound = tree_failure_bound(1024, 4)
        errors = [entry.leaf_error for entry in bound.stages]
        assert errors[-1] == min(errors)
        assert errors[-1] < 1e-9  # ~ 2/k^4 at k = 1024

    def test_overall_is_poly_small_at_paper_exponent(self):
        # Corollary 3.8's 1 - 1/k^3 flavor: overall <= k * O(1/k^4).
        for k in (64, 256, 1024):
            bound = tree_failure_bound(k, 3)
            assert bound.overall <= 8.0 / k**2

    def test_bound_shrinks_with_exponent(self):
        weak = tree_failure_bound(256, 3, confidence_exponent=1)
        standard = tree_failure_bound(256, 3, confidence_exponent=4)
        strong = tree_failure_bound(256, 3, confidence_exponent=8)
        assert strong.overall < standard.overall < weak.overall

    def test_bound_monotone_in_bucket_load(self):
        light = tree_failure_bound(256, 3, bucket_load=2)
        heavy = tree_failure_bound(256, 3, bucket_load=8)
        assert heavy.overall >= light.overall

    def test_r1_rejected(self):
        with pytest.raises(ValueError):
            tree_failure_bound(256, 1)


class TestBoundVsObservation:
    def test_observed_failures_within_bound(self, rng):
        # The point of the module: the computed bound must dominate the
        # observed failure rate.  Use the weak exponent so failures are
        # observable, then check rate <= bound (with Monte-Carlo slack).
        k, rounds, exponent = 64, 2, 1
        bound = tree_failure_bound(k, rounds, confidence_exponent=exponent)
        protocol = TreeProtocol(
            1 << 16, k, rounds=rounds, confidence_exponent=exponent
        )
        trials, failures = 150, 0
        for seed in range(trials):
            s, t = make_instance(rng, 1 << 16, k, 0.5)
            if not protocol.run(s, t, seed=seed).correct_for(s, t):
                failures += 1
        observed = failures / trials
        assert observed <= bound.overall + 0.05

    def test_default_config_bound_predicts_no_observable_failures(self, rng):
        # At the paper's exponent the bound itself certifies that 100
        # trials should see ~0 failures.
        k = 128
        bound = tree_failure_bound(k, 3)
        assert bound.overall * 100 < 0.2
        protocol = TreeProtocol(1 << 16, k, rounds=3)
        for seed in range(50):
            s, t = make_instance(rng, 1 << 16, k, 0.5)
            assert protocol.run(s, t, seed=seed).correct_for(s, t)
