"""Tests for the Theorem 3.1 protocol (bucketing + amortized equality)."""

import math
import random

import pytest

from conftest import make_instance
from repro.protocols.sqrt_k import SqrtKProtocol


class TestCorrectness:
    def test_exact_on_all_overlap_regimes(self, rng, overlap_fraction):
        protocol = SqrtKProtocol(1 << 20, 128)
        s, t = make_instance(rng, 1 << 20, 128, overlap_fraction)
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_many_seeds(self, rng):
        protocol = SqrtKProtocol(1 << 20, 64)
        failures = 0
        for seed in range(60):
            s, t = make_instance(rng, 1 << 20, 64, 0.5)
            if not protocol.run(s, t, seed=seed).correct_for(s, t):
                failures += 1
        assert failures <= 1  # 1 - 1/poly(k) success

    def test_empty(self):
        protocol = SqrtKProtocol(1 << 10, 8)
        assert protocol.run(set(), set(), seed=0).alice_output == frozenset()

    def test_one_sided_empty(self, rng):
        protocol = SqrtKProtocol(1 << 16, 32)
        s, _ = make_instance(rng, 1 << 16, 32, 0.0)
        outcome = protocol.run(s, set(), seed=0)
        assert outcome.alice_output == frozenset()
        assert outcome.bob_output == frozenset()

    def test_identical_sets(self, rng):
        protocol = SqrtKProtocol(1 << 16, 64)
        s, _ = make_instance(rng, 1 << 16, 64, 0.0)
        outcome = protocol.run(s, s, seed=0)
        assert outcome.alice_output == s


class TestCost:
    def test_linear_communication(self):
        # Theorem 3.1: O(k) expected bits -- per-k cost stays in a constant
        # band as k grows 16x.
        rng = random.Random(18)
        per_k = {}
        for k in (64, 256, 1024):
            s, t = make_instance(rng, 1 << 24, k, 0.5)
            bits = SqrtKProtocol(1 << 24, k).run(s, t, seed=0).total_bits
            per_k[k] = bits / k
        values = list(per_k.values())
        assert max(values) < 80
        assert max(values) / min(values) < 2.5

    def test_rounds_within_sqrt_k(self):
        rng = random.Random(19)
        k = 256
        s, t = make_instance(rng, 1 << 20, k, 0.5)
        outcome = SqrtKProtocol(1 << 20, k).run(s, t, seed=0)
        assert outcome.num_messages <= 6 * math.ceil(math.sqrt(k))

    def test_cost_independent_of_universe(self):
        rng = random.Random(20)
        k = 64
        s1, t1 = make_instance(rng, 1 << 16, k, 0.5)
        s2, t2 = make_instance(rng, 1 << 48, k, 0.5)
        bits_small = SqrtKProtocol(1 << 16, k).run(s1, t1, seed=0).total_bits
        bits_large = SqrtKProtocol(1 << 48, k).run(s2, t2, seed=0).total_bits
        # identical up to bucket-occupancy noise (different random sets)
        assert abs(bits_large - bits_small) / bits_small < 0.5

    def test_expected_instance_count_bound(self):
        # Paper equation (1): E[#equality instances] <= 6k.  We check the
        # realized instance count indirectly: communication stays linear
        # even at full overlap, where |S u T| = k is smallest.
        rng = random.Random(21)
        k = 512
        s, t = make_instance(rng, 1 << 24, k, 1.0)
        bits = SqrtKProtocol(1 << 24, k).run(s, t, seed=0).total_bits
        assert bits < 80 * k


class TestValidation:
    def test_universe_exponent_must_exceed_two(self):
        with pytest.raises(ValueError):
            SqrtKProtocol(100, 10, universe_exponent=2)

    def test_agreement(self, rng):
        protocol = SqrtKProtocol(1 << 16, 64)
        for seed in range(10):
            s, t = make_instance(rng, 1 << 16, 64, 0.5)
            outcome = protocol.run(s, t, seed=seed)
            assert outcome.alice_output == outcome.bob_output
