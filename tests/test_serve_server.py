"""End-to-end tests for the asyncio intersection server.

Each scenario boots a real server on a loopback socket and speaks the
frame protocol through :class:`FrameReader` -- the same path production
clients take, including the backpressure and typed-shedding contract.
"""

import asyncio

import pytest

from conftest import make_instance
from repro.serve import IntersectionServer, ServeConfig
from repro.serve.wire import FrameReader, encode_frame


async def _client(server):
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    return FrameReader(reader), writer


async def _ask(frames, writer, request):
    writer.write(encode_frame(request))
    await writer.drain()
    return await frames.next()


def _with_server(config, scenario):
    async def runner():
        server = IntersectionServer(config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()

    return asyncio.run(runner())


class TestControlOps:
    def test_ping_open_stats_close(self, rng):
        s, t = make_instance(rng, 1 << 20, 64, 0.5)

        async def scenario(server):
            frames, writer = await _client(server)
            assert (await _ask(frames, writer, {"op": "ping"}))["pong"]
            opened = await _ask(
                frames, writer,
                {"op": "open", "session": "a", "universe": 1 << 20,
                 "k": 64, "rounds": 1},
            )
            assert opened["ok"] and isinstance(opened["seed"], int)
            reply = await _ask(
                frames, writer,
                {"op": "size", "id": 1, "session": "a",
                 "alice": sorted(s), "bob": sorted(t)},
            )
            assert reply["ok"] and reply["result"] == len(s & t)
            assert reply["protocol"] == "one-round-hashing"
            assert reply["bits"] > 0 and reply["id"] == 1
            stats = await _ask(
                frames, writer, {"op": "stats", "session": "a"}
            )
            assert stats["stats"]["operations"] == 1
            closed = await _ask(
                frames, writer, {"op": "close", "session": "a"}
            )
            assert closed["ok"]
            gone = await _ask(
                frames, writer, {"op": "stats", "session": "a"}
            )
            assert gone["error"]["type"] == "unknown-session"
            writer.close()

        _with_server(ServeConfig(), scenario)

    def test_typed_request_errors(self):
        async def scenario(server):
            frames, writer = await _client(server)
            unknown = await _ask(
                frames, writer,
                {"op": "size", "session": "nope", "alice": [], "bob": []},
            )
            assert unknown["error"]["type"] == "unknown-session"
            await _ask(
                frames, writer,
                {"op": "open", "session": "a", "universe": 1 << 10, "k": 8},
            )
            duplicate = await _ask(
                frames, writer,
                {"op": "open", "session": "a", "universe": 1 << 10, "k": 8},
            )
            assert duplicate["error"]["type"] == "session-exists"
            bad = await _ask(
                frames, writer,
                {"op": "open", "session": "b", "universe": "big", "k": 8},
            )
            assert bad["error"]["type"] == "bad-request"
            weird = await _ask(frames, writer, {"op": "frobnicate"})
            assert weird["error"]["type"] == "bad-request"
            writer.close()

        _with_server(ServeConfig(), scenario)

    def test_invalid_elements_get_typed_reply(self):
        # Admission is shape-only; element bounds surface from the
        # execution path as a typed invalid-input reply.
        async def scenario(server):
            frames, writer = await _client(server)
            await _ask(
                frames, writer,
                {"op": "open", "session": "a", "universe": 1 << 10, "k": 8,
                 "rounds": 1},
            )
            replies = []
            for alice in ([1 << 30], ["x"]):
                replies.append(
                    await _ask(
                        frames, writer,
                        {"op": "size", "session": "a",
                         "alice": alice, "bob": []},
                    )
                )
            not_a_list = await _ask(
                frames, writer,
                {"op": "size", "session": "a", "alice": 3, "bob": []},
            )
            writer.close()
            return replies, not_a_list

        replies, not_a_list = _with_server(ServeConfig(), scenario)
        assert all(reply["error"]["type"] == "invalid-input" for reply in replies)
        assert not_a_list["error"]["type"] == "bad-request"

    def test_bad_frame_answered_then_disconnected(self):
        async def scenario(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((99999999).to_bytes(4, "big"))
            await writer.drain()
            reply = await FrameReader(reader).next()
            assert reply["error"]["type"] == "bad-frame"
            assert await reader.read() == b""
            writer.close()

        _with_server(ServeConfig(max_frame_bytes=1024), scenario)


class TestBackpressure:
    def test_per_session_overload_is_typed_and_scoped(self, rng):
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        config = ServeConfig(
            tick_s=5.0,  # hold the batch so the queue visibly fills
            max_pending_per_session=2,
            max_pending_global=100,
        )

        async def scenario(server):
            frames, writer = await _client(server)
            await _ask(
                frames, writer,
                {"op": "open", "session": "hot", "universe": 1 << 20,
                 "k": 64, "rounds": 1},
            )
            request = {"op": "size", "session": "hot",
                       "alice": sorted(s), "bob": sorted(t)}
            for index in range(5):
                writer.write(encode_frame(dict(request, id=index)))
            await writer.drain()
            # The three over-bound ops are shed immediately; the two
            # admitted ones complete when the tick fires at shutdown...
            sheds = [await frames.next() for _ in range(3)]
            info = await _ask(frames, writer, {"op": "info"})
            writer.close()
            return sheds, info

        sheds, info = _with_server(config, scenario)
        for reply in sheds:
            assert reply["error"]["type"] == "overloaded"
            assert reply["error"]["scope"] == "session"
        assert info["info"]["shed"] == 3
        assert info["info"]["pending"] == 2

    def test_global_overload_scope(self, rng):
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        config = ServeConfig(
            tick_s=5.0, max_pending_global=1, max_pending_per_session=100
        )

        async def scenario(server):
            frames, writer = await _client(server)
            for key in ("a", "b"):
                await _ask(
                    frames, writer,
                    {"op": "open", "session": key, "universe": 1 << 20,
                     "k": 64, "rounds": 1},
                )
            request = {"alice": sorted(s), "bob": sorted(t), "op": "size"}
            writer.write(encode_frame(dict(request, session="a", id=0)))
            writer.write(encode_frame(dict(request, session="b", id=1)))
            await writer.drain()
            shed = await frames.next()
            writer.close()
            return shed

        shed = _with_server(config, scenario)
        assert shed["error"]["type"] == "overloaded"
        assert shed["error"]["scope"] == "server"

    def test_admitted_ops_answered_after_eof(self, rng):
        # EOF is not cancellation: ops admitted before the client stops
        # sending still execute, bill, and get replies.
        s, t = make_instance(rng, 1 << 20, 64, 0.5)

        async def scenario(server):
            frames, writer = await _client(server)
            await _ask(
                frames, writer,
                {"op": "open", "session": "a", "universe": 1 << 20,
                 "k": 64, "rounds": 1},
            )
            writer.write(
                encode_frame({"op": "size", "id": 9, "session": "a",
                              "alice": sorted(s), "bob": sorted(t)})
            )
            writer.write_eof()
            reply = await frames.next()
            writer.close()
            return reply

        reply = _with_server(ServeConfig(tick_s=0.001), scenario)
        assert reply["ok"] and reply["result"] == len(s & t)


class TestUnixTransport:
    """The UDS listener: same wire protocol and typed-error taxonomy as
    TCP, different socket family underneath."""

    def test_config_validation(self):
        with pytest.raises(ValueError, match="transport"):
            ServeConfig(transport="smoke-signals")
        with pytest.raises(ValueError, match="uds_path"):
            ServeConfig(transport="uds")

    def test_serves_identical_protocol_over_uds(self, rng, tmp_path):
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        path = str(tmp_path / "serve.sock")
        config = ServeConfig(transport="uds", uds_path=path, tick_s=0.001)

        async def scenario(server):
            assert server.endpoint == ("uds", path)
            with pytest.raises(RuntimeError, match="no TCP address"):
                server.address
            reader, writer = await asyncio.open_unix_connection(path)
            frames = FrameReader(reader)
            assert (await _ask(frames, writer, {"op": "ping"}))["pong"]
            await _ask(
                frames, writer,
                {"op": "open", "session": "a", "universe": 1 << 20,
                 "k": 64, "rounds": 1},
            )
            reply = await _ask(
                frames, writer,
                {"op": "size", "id": 1, "session": "a",
                 "alice": sorted(s), "bob": sorted(t)},
            )
            # Typed errors ride UDS unchanged.
            missing = await _ask(
                frames, writer,
                {"op": "size", "id": 2, "session": "ghost",
                 "alice": [1], "bob": [2]},
            )
            writer.close()
            return reply, missing

        reply, missing = _with_server(config, scenario)
        assert reply["ok"] and reply["result"] == len(s & t)
        assert missing["error"]["type"] == "unknown-session"

    def test_socket_file_replaced_on_start_and_removed_on_stop(self, tmp_path):
        path = tmp_path / "serve.sock"
        path.write_bytes(b"")  # stale file from a dead server
        config = ServeConfig(transport="uds", uds_path=str(path))

        async def scenario(server):
            assert path.is_socket()
            return True

        assert _with_server(config, scenario)
        assert not path.exists()

    def test_tcp_endpoint_shape_unchanged(self):
        async def scenario(server):
            kind, (host, port) = server.endpoint
            assert kind == "tcp" and (host, port) == server.address

        _with_server(ServeConfig(), scenario)
