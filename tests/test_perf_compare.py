"""The bench regression gate: compare_reports semantics and the CLI wiring.

The gate's contract: same-or-faster passes, a drop beyond tolerance fails,
a vanished micro fails, and the E1 loop must keep certifying bit-identical
counters.  The CLI test injects a synthetic regression through two JSON
files and ``--report`` -- no benchmarks actually run, so the test pins the
exit-code contract, not machine speed.
"""

import io
import json

import pytest

from repro.cli import main
from repro.perf.compare import (
    DEFAULT_TOLERANCE_PCT,
    compare_reports,
    format_comparison,
)
from repro.perf.schema import bench_report_warnings


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def make_report(ops, e1=None, workers=4, cpus=8):
    micro = {
        name: {"ops_per_s": float(value), "wall_s": 1.0, "iterations": 10}
        for name, value in ops.items()
    }
    e1_section = {
        "trials": 8,
        "k": 256,
        "rounds": 2,
        "serial_uncached_s": 1.0,
        "serial_cached_s": 0.5,
        "parallel_s": 0.4,
        "workers": workers,
        "speedup_vs_serial": 2.5,
        "speedup_cached_only": 2.0,
        "bit_identical": True,
        "counters_sha256": "cafe" * 16,
    }
    if e1:
        e1_section.update(e1)
    return {
        "schema_version": 3,
        "suite": "repro.perf.core",
        "created_unix": 0.0,
        "host": {
            "python": "3.11",
            "platform": "test",
            "cpu_count": cpus,
            "cpu_count_affinity": cpus,
        },
        "config": {"workers": workers, "quick": True},
        "micro": micro,
        "e1_trial_loop": e1_section,
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = make_report({"tree_protocol": 100.0})
        result = compare_reports(report, make_report({"tree_protocol": 100.0}))
        assert result["ok"]
        assert result["regressions"] == []

    def test_small_wobble_within_tolerance_passes(self):
        old = make_report({"tree_protocol": 100.0})
        new = make_report({"tree_protocol": 95.0})
        assert compare_reports(old, new, tolerance_pct=10.0)["ok"]

    def test_drop_beyond_tolerance_regresses(self):
        old = make_report({"tree_protocol": 100.0})
        new = make_report({"tree_protocol": 50.0})
        result = compare_reports(old, new, tolerance_pct=10.0)
        assert not result["ok"]
        assert any("tree_protocol" in r for r in result["regressions"])
        (row,) = [r for r in result["micro"] if r["name"] == "tree_protocol"]
        assert row["status"] == "regressed"
        assert row["ratio"] == pytest.approx(0.5)

    def test_wide_tolerance_absorbs_the_same_drop(self):
        old = make_report({"tree_protocol": 100.0})
        new = make_report({"tree_protocol": 50.0})
        assert compare_reports(old, new, tolerance_pct=60.0)["ok"]

    def test_improvement_is_reported_not_flagged(self):
        old = make_report({"tree_protocol": 100.0})
        new = make_report({"tree_protocol": 300.0})
        result = compare_reports(old, new)
        (row,) = [r for r in result["micro"] if r["name"] == "tree_protocol"]
        assert result["ok"] and row["status"] == "improved"

    def test_missing_micro_regresses(self):
        old = make_report({"tree_protocol": 100.0, "batched_equality": 10.0})
        new = make_report({"tree_protocol": 100.0})
        result = compare_reports(old, new)
        assert not result["ok"]
        assert any("batched_equality" in r for r in result["regressions"])

    def test_new_micro_is_welcome(self):
        old = make_report({"tree_protocol": 100.0})
        new = make_report({"tree_protocol": 100.0, "bitwriter_bulk": 5.0})
        result = compare_reports(old, new)
        assert result["ok"]
        (row,) = [r for r in result["micro"] if r["name"] == "bitwriter_bulk"]
        assert row["status"] == "new"

    def test_backend_mismatch_skips_throughput(self):
        # A scalar-backend run (no numpy) against a numpy baseline must not
        # read as a regression -- or as a pass; it is simply not comparable.
        old = make_report({"pairwise_batch": 100.0})
        old["micro"]["pairwise_batch"]["backend"] = "numpy"
        new = make_report({"pairwise_batch": 10.0})
        new["micro"]["pairwise_batch"]["backend"] = "scalar"
        result = compare_reports(old, new)
        assert result["ok"]
        (row,) = [r for r in result["micro"] if r["name"] == "pairwise_batch"]
        assert row["status"] == "skipped"
        assert "backends differ" in row["detail"]

    def test_same_backend_still_gated(self):
        old = make_report({"pairwise_batch": 100.0})
        old["micro"]["pairwise_batch"]["backend"] = "numpy"
        new = make_report({"pairwise_batch": 10.0})
        new["micro"]["pairwise_batch"]["backend"] = "numpy"
        result = compare_reports(old, new, tolerance_pct=10.0)
        assert not result["ok"]

    def test_lost_bit_identity_regresses(self):
        old = make_report({"tree_protocol": 100.0})
        new = make_report({"tree_protocol": 100.0}, e1={"bit_identical": False})
        result = compare_reports(old, new)
        assert not result["ok"]
        assert any("bit_identical" in r for r in result["regressions"])

    def test_counter_drift_on_same_loop_regresses(self):
        old = make_report({"tree_protocol": 100.0})
        new = make_report(
            {"tree_protocol": 100.0}, e1={"counters_sha256": "beef" * 16}
        )
        result = compare_reports(old, new)
        assert not result["ok"]
        assert any("counters_sha256" in r for r in result["regressions"])

    def test_counter_check_skipped_across_loop_configs(self):
        old = make_report({"tree_protocol": 100.0})
        new = make_report(
            {"tree_protocol": 100.0},
            e1={"trials": 96, "counters_sha256": "beef" * 16},
        )
        result = compare_reports(old, new)
        assert result["ok"]
        (row,) = [r for r in result["e1"] if r["check"] == "counters_sha256"]
        assert row["status"] == "skipped"

    @pytest.mark.parametrize("tolerance", [-1.0, 100.0, 250.0])
    def test_tolerance_bounds(self, tolerance):
        report = make_report({"tree_protocol": 100.0})
        with pytest.raises(ValueError):
            compare_reports(report, report, tolerance_pct=tolerance)

    def test_format_mentions_verdict_and_reasons(self):
        old = make_report({"tree_protocol": 100.0})
        good = format_comparison(compare_reports(old, old))
        assert "PASS" in good
        bad = format_comparison(
            compare_reports(old, make_report({"tree_protocol": 10.0}))
        )
        assert "FAIL" in bad and "tree_protocol" in bad


class TestBenchWarnings:
    def test_oversubscribed_workers_warn(self):
        report = make_report({"tree_protocol": 100.0}, workers=4, cpus=1)
        warnings = bench_report_warnings(report)
        assert len(warnings) == 1
        assert "4" in warnings[0] and "1" in warnings[0]

    def test_honest_workers_quiet(self):
        report = make_report({"tree_protocol": 100.0}, workers=2, cpus=8)
        assert bench_report_warnings(report) == []


class TestCliCompareGate:
    def _write(self, path, report):
        path.write_text(json.dumps(report), encoding="utf-8")
        return str(path)

    def test_synthetic_regression_exits_nonzero(self, tmp_path):
        old = self._write(
            tmp_path / "old.json", make_report({"tree_protocol": 100.0})
        )
        new = self._write(
            tmp_path / "new.json", make_report({"tree_protocol": 40.0})
        )
        compare_out = tmp_path / "cmp.json"
        code, output = run_cli(
            [
                "bench",
                "--report", new,
                "--compare", old,
                "--tolerance", "25",
                "--compare-out", str(compare_out),
            ]
        )
        assert code == 1
        assert "FAIL" in output and "tree_protocol" in output
        artifact = json.loads(compare_out.read_text(encoding="utf-8"))
        assert artifact["ok"] is False
        assert artifact["tolerance_pct"] == 25.0

    def test_clean_comparison_exits_zero(self, tmp_path):
        old = self._write(
            tmp_path / "old.json", make_report({"tree_protocol": 100.0})
        )
        new = self._write(
            tmp_path / "new.json", make_report({"tree_protocol": 101.0})
        )
        code, output = run_cli(["bench", "--report", new, "--compare", old])
        assert code == 0
        assert "PASS" in output

    def test_report_without_compare_is_a_usage_error(self, tmp_path):
        new = self._write(
            tmp_path / "new.json", make_report({"tree_protocol": 100.0})
        )
        code, output = run_cli(["bench", "--report", new])
        assert code == 2
        assert "--compare" in output

    def test_missing_baseline_file_fails_cleanly(self, tmp_path):
        new = self._write(
            tmp_path / "new.json", make_report({"tree_protocol": 100.0})
        )
        code, output = run_cli(
            ["bench", "--report", new, "--compare", str(tmp_path / "nope.json")]
        )
        assert code == 1
        assert "cannot read" in output


class TestNewMicros:
    def test_engine_micros_run_and_agree(self):
        from repro.perf.bench import (
            _op_bitstring_concat,
            _op_bitwriter_bulk,
            _op_transcript_append,
        )

        _op_bitwriter_bulk()
        _op_bitstring_concat()
        _op_transcript_append()


class TestMixedSchemaBackends:
    # Schema v2 reports carry no per-micro ``backend`` tag; v3 reports do.
    # A mixed compare must skip the throughput check in both directions --
    # ``None`` vs a real tag is a configuration difference, same as
    # ``numpy`` vs ``scalar``.

    def test_tagged_baseline_vs_untagged_new_is_skipped(self):
        old = make_report({"pairwise_batch": 100.0})
        old["micro"]["pairwise_batch"]["backend"] = "numpy"
        new = make_report({"pairwise_batch": 10.0})
        result = compare_reports(old, new)
        assert result["ok"]
        (row,) = [r for r in result["micro"] if r["name"] == "pairwise_batch"]
        assert row["status"] == "skipped"
        assert "backends differ" in row["detail"]

    def test_untagged_baseline_vs_tagged_new_is_skipped(self):
        old = make_report({"pairwise_batch": 100.0})
        new = make_report({"pairwise_batch": 10.0})
        new["micro"]["pairwise_batch"]["backend"] = "scalar"
        result = compare_reports(old, new)
        assert result["ok"]
        (row,) = [r for r in result["micro"] if r["name"] == "pairwise_batch"]
        assert row["status"] == "skipped"

    def test_new_micro_never_gates_even_with_backend_tag(self):
        # A micro the baseline has never seen cannot regress, whatever its
        # backend or throughput.
        old = make_report({"tree_protocol": 100.0})
        new = make_report({"tree_protocol": 100.0, "fresh_micro": 0.001})
        new["micro"]["fresh_micro"]["backend"] = "scalar"
        result = compare_reports(old, new)
        assert result["ok"]
        (row,) = [r for r in result["micro"] if r["name"] == "fresh_micro"]
        assert row["status"] == "new"
        assert row["ratio"] is None


class TestTimeOp:
    def test_iterations_count_the_timed_calls_exactly(self):
        from repro.perf.bench import _time_op

        calls = []
        result = _time_op(lambda: calls.append(None), 0.005)
        # Four equal blocks of block_iters calls each, plus the single
        # calibration warm-up call which is *not* part of ``iterations``.
        assert result["iterations"] % 4 == 0
        assert len(calls) == result["iterations"] + 1
        assert result["ops_per_s"] > 0
        assert result["wall_s"] > 0

    def test_wall_time_excludes_the_warmup_call(self):
        import time as _time

        from repro.perf.bench import _time_op

        state = {"first": True}

        def op():
            if state["first"]:
                state["first"] = False
                _time.sleep(0.2)

        result = _time_op(op, 0.0)
        # The slow call was the calibration run; the four timed blocks (one
        # fast iteration each, since target/once rounds to one) must not
        # include its 200ms.
        assert result["iterations"] == 4
        assert result["wall_s"] < 0.1
