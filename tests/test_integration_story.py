"""A full-stack story test: the workflow a downstream team would actually run.

One scenario end to end: generate a realistic workload, reconcile through a
session, audit the costs against the analytic models, export JSON for the
dashboard, and render the conversation for the postmortem doc.  Exercises
the seams *between* modules that unit tests cover individually.
"""

import json

from repro import IntersectionSession
from repro.analysis import measure_protocol, predict_tree_bits_upper
from repro.analysis.failure_bounds import tree_failure_bound
from repro.comm.render import render_transcript
from repro.core.tree_protocol import TreeProtocol
from repro.reporting import to_json, trial_report_to_dict
from repro.testing import check_intersection_contract
from repro.workloads import Distribution, WorkloadSpec, generate_pair


class TestReconciliationStory:
    N, K = 1 << 24, 256

    def test_the_whole_pipeline(self):
        # 1. A database-shaped workload: clustered keys, moderate overlap.
        spec = WorkloadSpec(self.N, self.K, 0.4, Distribution.CLUSTERED)

        # 2. The nightly reconciliation session: three queries.
        session = IntersectionSession(self.N, self.K, seed=42)
        for seed in range(3):
            s, t = generate_pair(spec, seed)
            assert session.intersect(s, t) == s & t
        stats = session.stats()
        assert stats.operations == 3

        # 3. Capacity audit: measured costs sit under the analytic model.
        model = predict_tree_bits_upper(self.K, 4)
        assert stats.mean_bits <= 2 * model

        # 4. Reliability audit: the proof-shaped failure bound certifies
        #    the nightly job (3 ops x bound << 1).
        bound = tree_failure_bound(self.K, 4)
        assert 3 * bound.overall < 1e-3

        # 5. Bulk measurement for the quarterly report, exported as JSON.
        report = measure_protocol(
            TreeProtocol(self.N, self.K), spec, trials=6
        )
        assert report.success_rate == 1.0
        payload = json.loads(to_json(report))
        assert payload == trial_report_to_dict(report)
        assert payload["bits"]["mean"] == report.bits.mean

        # 6. The postmortem artifact: a readable transcript of one run.
        s, t = generate_pair(spec, 99)
        outcome = TreeProtocol(self.N, self.K).run(s, t, seed=0)
        chart = render_transcript(outcome.transcript)
        assert f"total: {outcome.total_bits} bits" in chart

        # 7. And the gate the team's CI would run on any protocol change.
        conformance = check_intersection_contract(
            TreeProtocol(self.N, self.K), failure_budget=1
        )
        assert conformance.passed, str(conformance)
