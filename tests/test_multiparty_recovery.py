"""The multiparty crash-recovery layer's property and regression suite.

Four contracts, per ISSUE 10:

* **one-sided invariant** (property suite): for every protocol x m x
  randomized crash schedule, the output is the exact intersection or a
  certified superset of it -- never a strict subset, never silently wrong
  (an ``"exact"`` status must really equal the truth, a ``"recovered"``
  status must equal the survivors' exact intersection, a degradation must
  be flagged as such);
* **differential oracle**: a recovered run equals a crash-free run over
  the survivors' inputs, for every single-crash position in a depth-3
  binary tree;
* **seed lineage**: recovery attempt seeds are the literal-pinned
  ``derive_seed`` lineage, and the same plan seed + crash schedule gives
  an identical transcript fingerprint across serial / thread / process
  executors;
* **typed degradation** (the bugfix regression): a crash that used to
  escape ``run()`` as a bare ``MessageToFinishedPlayer`` /
  ``ProtocolDeadlock`` now returns the typed certified-superset outcome.
"""

import contextlib
import random

import pytest

from repro.faults.models import Churn, PlayerCrash
from repro.faults.plan import FaultPlan, inject
from repro.faults.state import STATE as FAULTS_STATE
from repro.multiparty.binary_tree import BinaryTreeIntersection
from repro.multiparty.coordinator import CoordinatorIntersection
from repro.multiparty.recovery import (
    MultipartyRobustOutcome,
    RecoveryPolicy,
    recovery_attempt_seed,
    recovery_fingerprint,
    run_with_recovery,
)
from repro.obs.schema import validate_trace_events
from repro.obs.state import STATE as OBS_STATE
from repro.obs.trace import RingBufferSink, Tracer
from repro.perf.executor import derive_seed
from repro.workloads import MultipartySpec
from repro.workloads.multiparty import generate_multiparty

PROTOCOL_CLASSES = (CoordinatorIntersection, BinaryTreeIntersection)


def make_instance(num_players, seed, *, set_size=8, common_size=3):
    universe = max(4096, set_size * (num_players + 1) * 4)
    spec = MultipartySpec(
        universe_size=universe,
        set_size=set_size,
        num_players=num_players,
        common_size=common_size,
    )
    return universe, generate_multiparty(spec, seed)


def truth_of(sets):
    return frozenset.intersection(*(frozenset(s) for s in sets))


@contextlib.contextmanager
def reliable():
    """Suspend any ambient (``REPRO_FAULTS``) plan for the block.

    The contracts below compare against genuinely crash-free runs; under
    the CI churn leg the process-global plan would otherwise leak into
    them.  Tests that *want* faults install explicit plans, which always
    win over the global one.
    """
    previous = FAULTS_STATE.plan
    FAULTS_STATE.install(None)
    try:
        yield
    finally:
        FAULTS_STATE.install(previous)


class TestCrashFreeEquivalence:
    """Attempt 0 uses the session seed: wrapping a reliable run changes
    nothing -- not the result, not a bit of the accounting."""

    @pytest.mark.parametrize("protocol_cls", PROTOCOL_CLASSES)
    def test_wrapped_run_is_bit_identical(self, protocol_cls):
        universe, sets = make_instance(8, seed=21)
        protocol = protocol_cls(universe, 8)
        with reliable():
            plain = protocol.run(sets, seed=5, recover=False)
            robust = run_with_recovery(protocol, sets, seed=5)
        assert robust.status == "exact"
        assert robust.intersection == plain.intersection == truth_of(sets)
        assert robust.total_bits == plain.total_bits
        assert robust.total_rounds == plain.rounds
        assert robust.recovery_bits == 0 and robust.recovery_rounds == 0
        assert robust.attempts == 1 and robust.crashed == ()

    def test_attempt_zero_seed_is_session_seed(self):
        assert recovery_attempt_seed(977, 0) == 977


class TestCrashScheduleProperty:
    """The property suite: randomized crash schedules never yield a strict
    subset of the truth and never mislabel the outcome."""

    @pytest.mark.parametrize("protocol_cls", PROTOCOL_CLASSES)
    @pytest.mark.parametrize("num_players", (3, 8, 17, 64))
    def test_one_sided_invariant(self, protocol_cls, num_players):
        schedules = 2 if num_players == 64 else 4
        for case in range(schedules):
            rng = random.Random(num_players * 1009 + case)
            universe, sets = make_instance(
                num_players, seed=rng.randrange(1 << 20)
            )
            truth = truth_of(sets)
            if case % 2 == 0:
                model = Churn(rng.choice((0.1, 0.3, 0.5)))
            else:
                model = PlayerCrash(
                    1.0,
                    max_crashes=rng.randrange(1, num_players),
                    target=None,
                )
            plan = FaultPlan(model, seed=rng.randrange(1 << 20))
            protocol = protocol_cls(universe, 8)
            outcome = run_with_recovery(protocol, sets, seed=case, plan=plan)

            # Never a subset of the truth, never an unflagged superset.
            assert truth <= outcome.intersection, (
                f"{protocol.name} m={num_players} case={case}: output lost "
                f"elements of the true intersection"
            )
            assert outcome.superset_of(sets)
            if outcome.status == "exact":
                assert outcome.intersection == truth
                assert outcome.crashed == ()
            elif outcome.status == "recovered":
                dead = set(outcome.crashed)
                survivor_sets = [
                    s
                    for name, s in zip(
                        sorted(f"p{i:05d}" for i in range(num_players)), sets
                    )
                    if name not in dead
                ]
                assert outcome.intersection == truth_of(survivor_sets)
            else:
                assert outcome.status == "degraded"
                assert outcome.degraded

    @pytest.mark.parametrize("protocol_cls", PROTOCOL_CLASSES)
    def test_total_extinction_degrades_typed(self, protocol_cls):
        universe, sets = make_instance(3, seed=2)
        plan = FaultPlan(PlayerCrash(1.0, max_crashes=3), seed=4)
        outcome = run_with_recovery(
            protocol_cls(universe, 8), sets, seed=1, plan=plan
        )
        assert outcome.status == "degraded"
        assert outcome.degraded_mode == "no-survivors"
        assert outcome.survivors == ()
        assert outcome.superset_of(sets)

    def test_lone_survivor_short_circuits(self):
        universe, sets = make_instance(3, seed=2)
        # Kill two of three: the lone survivor answers with its own input
        # (the survivors' exact intersection) without communicating.
        plan = FaultPlan(PlayerCrash(1.0, max_crashes=2), seed=4)
        outcome = run_with_recovery(
            CoordinatorIntersection(universe, 8), sets, seed=1, plan=plan
        )
        assert outcome.status == "recovered"
        assert len(outcome.survivors) == 1
        assert outcome.intersection == frozenset(
            sets[int(outcome.survivors[0][1:])]
        )

    def test_recovery_charged_honestly(self):
        universe, sets = make_instance(8, seed=21)
        plan = FaultPlan(PlayerCrash(1.0, target="p00003"), seed=11)
        outcome = run_with_recovery(
            CoordinatorIntersection(universe, 8), sets, seed=5, plan=plan
        )
        assert outcome.status == "recovered" and outcome.attempts == 2
        # The failed attempt's traffic stays on the bill; the re-run's
        # share is split out as the recovery phase.
        assert 0 < outcome.recovery_bits < outcome.total_bits
        assert 0 < outcome.recovery_rounds < outcome.total_rounds


class TestDifferentialOracle:
    """Recovered result == crash-free run over the survivors' inputs, for
    every single-crash position in a depth-3 (m=8) binary tree."""

    @pytest.mark.parametrize("crash_position", range(8))
    def test_single_crash_positions(self, crash_position):
        universe, sets = make_instance(8, seed=13)
        protocol = BinaryTreeIntersection(universe, 8)
        plan = FaultPlan(
            PlayerCrash(1.0, target=f"p{crash_position:05d}"), seed=3
        )
        recovered = run_with_recovery(protocol, sets, seed=7, plan=plan)
        assert recovered.status == "recovered"
        assert recovered.crashed == (f"p{crash_position:05d}",)

        survivor_sets = [
            s for index, s in enumerate(sets) if index != crash_position
        ]
        with reliable():
            oracle = protocol.run(survivor_sets, seed=7, recover=False)
        assert recovered.intersection == oracle.intersection
        assert oracle.intersection == truth_of(survivor_sets)

    @pytest.mark.parametrize("crash_position", (0, 3, 7))
    def test_coordinator_re_polls_siblings(self, crash_position):
        universe, sets = make_instance(8, seed=13)
        protocol = CoordinatorIntersection(universe, 8)
        plan = FaultPlan(
            PlayerCrash(1.0, target=f"p{crash_position:05d}"), seed=3
        )
        recovered = run_with_recovery(protocol, sets, seed=7, plan=plan)
        survivor_sets = [
            s for index, s in enumerate(sets) if index != crash_position
        ]
        assert recovered.status == "recovered"
        assert recovered.intersection == truth_of(survivor_sets)


class TestSeedLineage:
    """Recovery attempt seeds are the library-wide derive_seed lineage,
    pinned as literals so any drift in the derivation breaks loudly."""

    def test_pinned_lineage(self):
        assert recovery_attempt_seed(12345, 0) == 12345
        assert recovery_attempt_seed(12345, 1) == 2221160028633567589
        assert recovery_attempt_seed(12345, 2) == 596964023104049061
        assert recovery_attempt_seed(12345, 3) == 1680884476794470125
        assert recovery_attempt_seed(12345, 4) == 2946641162414760239

    def test_lineage_is_derive_seed(self):
        for attempt in range(1, 6):
            assert recovery_attempt_seed(42, attempt) == derive_seed(
                42, attempt
            )

    @pytest.mark.parametrize("protocol_cls", PROTOCOL_CLASSES)
    def test_same_seed_same_schedule_same_fingerprint(self, protocol_cls):
        universe, sets = make_instance(8, seed=13)
        fingerprints = set()
        for _ in range(2):
            # Fresh model + plan per run: same plan seed => same crash
            # schedule => bit-identical recovered session.
            plan = FaultPlan(Churn(0.3), seed=19)
            outcome = run_with_recovery(
                protocol_cls(universe, 8), sets, seed=23, plan=plan
            )
            fingerprints.add(recovery_fingerprint(outcome))
        assert len(fingerprints) == 1

    def test_fingerprint_covers_the_outcome(self):
        universe, sets = make_instance(3, seed=2)
        plan = FaultPlan(PlayerCrash(1.0, target="p00001"), seed=4)
        one = run_with_recovery(
            CoordinatorIntersection(universe, 8), sets, seed=1, plan=plan
        )
        with reliable():
            clean = run_with_recovery(
                CoordinatorIntersection(universe, 8), sets, seed=1
            )
        assert recovery_fingerprint(one) != recovery_fingerprint(clean)


class TestExecutorInvariance:
    """The plan path's record stream is a pure function of the plan:
    serial, thread, and process executors fingerprint identically."""

    def test_counters_sha256_across_executors(self):
        from repro.plans.model import Plan, ProtocolSpec, RetrySpec
        from repro.plans.scheduler import run_plan

        plan = Plan(
            name="churn-executors",
            analysis="multiparty-survival",
            protocols=(
                ProtocolSpec("coordinator"),
                ProtocolSpec("binary-tree"),
            ),
            instances=(
                MultipartySpec(
                    universe_size=4096,
                    set_size=8,
                    num_players=8,
                    common_size=3,
                ),
            ),
            fault_specs=("churn@0.3",),
            trials=4,
            seed=77,
            shard_size=2,
            retry=RetrySpec(max_attempts=8),
        )
        fingerprints = {
            run_plan(
                plan, use_env_cache=False, executor=executor
            ).counters_sha256
            for executor in ("serial", "thread", "process")
        }
        assert len(fingerprints) == 1


class TestTypedDegradation:
    """The bugfix regression: crashes used to escape ``run()`` as bare
    ``MessageToFinishedPlayer`` / ``ProtocolDeadlock`` errors.  These
    tests fail before the fix (the exceptions propagate) and pin the
    typed contract after it."""

    @pytest.mark.parametrize("protocol_cls", PROTOCOL_CLASSES)
    def test_non_root_crash_returns_typed_outcome(self, protocol_cls):
        universe, sets = make_instance(8, seed=21)
        protocol = protocol_cls(universe, 8)
        with inject(PlayerCrash(1.0, target="p00003"), seed=11):
            result = protocol.run(sets, seed=5, recover=False)
        assert result.status == "degraded"
        assert result.robust is not None
        assert result.robust.degraded_mode == "superset"
        assert result.robust.failure_reasons[0] in ("mail-to-dead", "deadlock")
        assert "p00003" in result.robust.crashed
        assert truth_of(sets) <= result.intersection
        # The accounting survives the crash (it used to vanish with the
        # escaping exception).
        assert result.total_bits > 0

    @pytest.mark.parametrize("protocol_cls", PROTOCOL_CLASSES)
    def test_root_crash_returns_typed_outcome(self, protocol_cls):
        universe, sets = make_instance(8, seed=21)
        protocol = protocol_cls(universe, 8)
        with inject(PlayerCrash(1.0, target="p00000"), seed=11):
            result = protocol.run(sets, seed=5, recover=False)
        assert result.status == "degraded"
        assert truth_of(sets) <= result.intersection

    @pytest.mark.parametrize("protocol_cls", PROTOCOL_CLASSES)
    def test_active_fault_plan_auto_recovers(self, protocol_cls):
        universe, sets = make_instance(8, seed=21)
        protocol = protocol_cls(universe, 8)
        with inject(PlayerCrash(1.0, target="p00003"), seed=11):
            result = protocol.run(sets, seed=5)
        assert result.status == "recovered"
        survivor_sets = [s for i, s in enumerate(sets) if i != 3]
        assert result.intersection == truth_of(survivor_sets)

    def test_reliable_run_has_no_robust_wrapper(self):
        universe, sets = make_instance(3, seed=2)
        with reliable():
            result = CoordinatorIntersection(universe, 8).run(sets, seed=5)
        assert result.status == "exact"
        assert result.robust is None


class TestRecoveryObservability:
    """Recovery emits schema-valid ``recovery.attempt`` /
    ``recovery.outcome`` events charging the recovery phase."""

    def _capture(self, fn):
        sink = RingBufferSink()
        OBS_STATE.install(Tracer([sink]))
        try:
            fn()
        finally:
            OBS_STATE.install(None)
        return sink.events()

    def test_recovered_session_events(self):
        universe, sets = make_instance(8, seed=21)
        protocol = CoordinatorIntersection(universe, 8)
        plan = FaultPlan(PlayerCrash(1.0, target="p00003"), seed=11)
        events = self._capture(
            lambda: run_with_recovery(protocol, sets, seed=5, plan=plan)
        )
        assert validate_trace_events(events) == []
        attempts = [e for e in events if e["type"] == "recovery.attempt"]
        outcomes = [e for e in events if e["type"] == "recovery.outcome"]
        # The crash can surface as a completed-with-casualties attempt or
        # as the scheduler dying on the corpse; all are crash reasons.
        assert len(attempts) == 1
        assert attempts[0]["reason"] in ("crashed", "mail-to-dead", "deadlock")
        assert attempts[0]["crashed"] == 1
        assert len(outcomes) == 1
        assert outcomes[0]["status"] == "recovered"
        assert outcomes[0]["attempts"] == 2
        assert outcomes[0]["recovery_bits"] > 0

    def test_clean_session_emits_no_attempt_events(self):
        universe, sets = make_instance(3, seed=2)
        protocol = CoordinatorIntersection(universe, 8)
        with reliable():
            events = self._capture(
                lambda: run_with_recovery(protocol, sets, seed=5)
            )
        assert [e for e in events if e["type"] == "recovery.attempt"] == []
        outcomes = [e for e in events if e["type"] == "recovery.outcome"]
        assert len(outcomes) == 1 and outcomes[0]["status"] == "exact"

    def test_degraded_session_emits_degraded_output(self):
        universe, sets = make_instance(3, seed=2)
        protocol = CoordinatorIntersection(universe, 8)
        plan = FaultPlan(PlayerCrash(1.0, max_crashes=3), seed=4)
        events = self._capture(
            lambda: run_with_recovery(protocol, sets, seed=1, plan=plan)
        )
        assert validate_trace_events(events) == []
        degraded = [e for e in events if e["type"] == "degraded.output"]
        assert len(degraded) == 1
        assert degraded[0]["mode"] == "no-survivors"


class TestRobustOutcomeShape:
    def test_policy_validates(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_attempts=0)

    def test_superset_helper(self):
        outcome = MultipartyRobustOutcome(
            intersection=frozenset({1, 2, 3}),
            status="degraded",
            protocol_name="coordinator-multiparty",
            survivors=("p00000",),
            crashed=("p00001",),
            attempts=1,
            total_bits=0,
            total_rounds=0,
            recovery_bits=0,
            recovery_rounds=0,
        )
        assert outcome.superset_of([{1, 2}, {2, 3}])
        assert not outcome.superset_of([{1, 9}, {9, 2}])
