"""Tests for the BSP message-passing simulator and the two-party adapter."""

import pytest

from repro.comm.engine import Recv, Send, run_two_party
from repro.comm.errors import (
    MessageToFinishedPlayer,
    ProtocolDeadlock,
    ProtocolViolation,
)
from repro.multiparty.network import (
    TwoPartyAdapter,
    run_message_passing,
)
from repro.util.bits import BitString, decode_uint, encode_uint


class TestBasicExecution:
    def test_ring_sum(self):
        # Each player adds its input and forwards around a ring; the last
        # player outputs the total.
        def player(ctx):
            position = ctx.index
            names = ctx.players
            total = ctx.input
            if position == 0:
                inbox = yield [(names[1], encode_uint(total, 16))]
                return None
            inbox = yield []
            while not inbox:
                inbox = yield []
            (_, payload), = inbox
            total += decode_uint(payload, 16)
            if position + 1 < len(names):
                yield [(names[position + 1], encode_uint(total, 16))]
                return None
            return total

        outcome = run_message_passing(
            {f"p{i}": player for i in range(4)},
            {f"p{i}": 10 * (i + 1) for i in range(4)},
        )
        assert outcome.outputs["p3"] == 100
        assert outcome.total_bits == 3 * 16
        assert outcome.rounds == 3

    def test_accounting_per_player(self):
        def sender(ctx):
            yield [("b", BitString(0, 7))]
            return None

        def receiver(ctx):
            inbox = yield []
            while not inbox:
                inbox = yield []
            return inbox[0][1]

        outcome = run_message_passing(
            {"a": sender, "b": receiver}, {"a": None, "b": None}
        )
        assert outcome.bits_sent == {"a": 7, "b": 0}
        assert outcome.bits_received == {"a": 0, "b": 7}
        assert outcome.max_player_bits == 7
        assert outcome.average_player_bits == 7.0

    def test_shared_randomness_common_to_all(self):
        def player(ctx):
            return ctx.shared.stream("coin").bits(32)
            yield  # pragma: no cover

        outcome = run_message_passing(
            {f"p{i}": player for i in range(3)}, {f"p{i}": None for i in range(3)}
        )
        drawn = set(outcome.outputs.values())
        assert len(drawn) == 1

    def test_private_randomness_distinct(self):
        def player(ctx):
            return ctx.private.stream("coin").bits(64)
            yield  # pragma: no cover

        outcome = run_message_passing(
            {f"p{i}": player for i in range(3)}, {f"p{i}": None for i in range(3)}
        )
        assert len(set(outcome.outputs.values())) == 3

    def test_canonical_player_order(self):
        def player(ctx):
            return (ctx.index, ctx.players)
            yield  # pragma: no cover

        outcome = run_message_passing(
            {"zeta": player, "alpha": player}, {"zeta": None, "alpha": None}
        )
        assert outcome.outputs["alpha"][0] == 0
        assert outcome.outputs["zeta"][0] == 1
        assert outcome.outputs["alpha"][1] == ("alpha", "zeta")


class TestFailureModes:
    def test_unknown_destination(self):
        def bad(ctx):
            yield [("ghost", BitString(0, 1))]
            return None

        with pytest.raises(ProtocolViolation):
            run_message_passing({"a": bad}, {"a": None})

    def test_message_to_finished_player(self):
        def quick(ctx):
            return None
            yield  # pragma: no cover

        def slow(ctx):
            yield []
            yield [("a", BitString(0, 1))]
            return None

        with pytest.raises(ProtocolViolation):
            run_message_passing({"a": quick, "b": slow}, {"a": None, "b": None})

    def test_message_to_finished_player_is_typed(self):
        # Regression: the deferred finished-player check raises the typed
        # subclass carrying who was mailed and how much, not a bare
        # ProtocolViolation -- fault-tolerance layers dispatch on it.
        def quick(ctx):
            return None
            yield  # pragma: no cover

        def slow(ctx):
            yield []
            yield [("a", BitString(0, 1)), ("a", BitString(1, 2))]
            return None

        with pytest.raises(MessageToFinishedPlayer) as excinfo:
            run_message_passing({"a": quick, "b": slow}, {"a": None, "b": None})
        assert isinstance(excinfo.value, ProtocolViolation)
        assert excinfo.value.player == "a"
        assert excinfo.value.undelivered == 2

    def test_message_to_finished_player_survives_pickling(self):
        # The parallel trial executor ships worker exceptions across the
        # process boundary; the keyword-only attrs must round-trip.
        import pickle

        error = MessageToFinishedPlayer("boom", player="p7", undelivered=3)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.player == "p7"
        assert clone.undelivered == 3
        assert str(clone) == str(error)

    def test_deadlock_detected(self):
        def waiter(ctx):
            inbox = yield []
            while not inbox:
                inbox = yield []
            return None

        with pytest.raises(ProtocolDeadlock):
            run_message_passing(
                {"a": waiter, "b": waiter}, {"a": None, "b": None}
            )

    def test_non_bitstring_rejected(self):
        def bad(ctx):
            yield [("a", "text")]
            return None

        def idle(ctx):
            inbox = yield []
            while not inbox:
                inbox = yield []
            return None

        with pytest.raises(ProtocolViolation):
            run_message_passing({"a": idle, "b": bad}, {"a": None, "b": None})


class TestTwoPartyAdapter:
    def make_pair(self):
        def alice(ctx):
            yield Send(encode_uint(5, 8))
            reply = yield Recv()
            return decode_uint(reply, 8)

        def bob(ctx):
            got = yield Recv()
            yield Send(encode_uint(decode_uint(got, 8) * 2, 8))
            return "done"

        return alice, bob

    def test_adapter_matches_direct_execution(self):
        from repro.comm.engine import PartyContext
        from repro.util.rng import PrivateRandomness, SharedRandomness

        alice_fn, bob_fn = self.make_pair()
        shared = SharedRandomness(0)
        alice_ctx = PartyContext("alice", None, shared, PrivateRandomness(1))
        bob_ctx = PartyContext("bob", None, shared, PrivateRandomness(2))
        alice_adapter = TwoPartyAdapter(alice_fn(alice_ctx))
        bob_adapter = TwoPartyAdapter(bob_fn(bob_ctx))

        to_bob = alice_adapter.step([])
        assert len(to_bob) == 1
        to_alice = bob_adapter.step(to_bob)
        assert bob_adapter.done and bob_adapter.output == "done"
        assert alice_adapter.step(to_alice) == []
        assert alice_adapter.done and alice_adapter.output == 10

        direct = run_two_party(
            alice_fn, bob_fn, alice_input=None, bob_input=None, shared_seed=0
        )
        assert direct.alice_output == 10

    def test_adapter_buffers_partial_input(self):
        def needy(ctx):
            first = yield Recv()
            second = yield Recv()
            return (first, second)

        adapter = TwoPartyAdapter(needy(None))
        assert adapter.step([]) == []
        assert not adapter.done
        adapter.step([BitString(1, 1)])
        assert not adapter.done
        adapter.step([BitString(0, 1)])
        assert adapter.done
        assert adapter.output == (BitString(1, 1), BitString(0, 1))
