"""Tests for the exists-equal problem ([ST13] discussion)."""

import random

import pytest

from repro.protocols.exists_equal import (
    ExistsEqualProtocol,
    exists_equal_via_intersection,
)


def make_instance(rng, k, num_equal):
    xs = [rng.getrandbits(40) for _ in range(k)]
    ys = [x ^ (1 + rng.getrandbits(6)) for x in xs]
    for index in rng.sample(range(k), num_equal):
        ys[index] = xs[index]
    return xs, ys


class TestDirectProtocol:
    def test_with_witness(self):
        rng = random.Random(0)
        protocol = ExistsEqualProtocol(64)
        xs, ys = make_instance(rng, 64, 3)
        outcome = protocol.run(xs, ys, seed=0)
        assert outcome.alice_output is True
        assert outcome.bob_output is True

    def test_single_witness(self):
        rng = random.Random(1)
        protocol = ExistsEqualProtocol(128)
        xs, ys = make_instance(rng, 128, 1)
        assert protocol.run(xs, ys, seed=0).alice_output is True

    def test_no_witness(self):
        rng = random.Random(2)
        protocol = ExistsEqualProtocol(64)
        xs, ys = make_instance(rng, 64, 0)
        assert protocol.run(xs, ys, seed=0).alice_output is False

    def test_false_answers_always_correct(self):
        # One-sidedness: with a witness present, the answer can never be
        # False (equal pairs are never reported unequal).
        rng = random.Random(3)
        protocol = ExistsEqualProtocol(32)
        for seed in range(40):
            xs, ys = make_instance(rng, 32, 1)
            assert protocol.run(xs, ys, seed=seed).alice_output is True

    def test_linear_communication(self):
        rng = random.Random(4)
        per_k = []
        for k in (64, 512):
            protocol = ExistsEqualProtocol(k)
            xs, ys = make_instance(rng, k, k // 8)
            per_k.append(protocol.run(xs, ys, seed=0).total_bits / k)
        assert max(per_k) < 40
        assert max(per_k) / min(per_k) < 2.5

    def test_empty_instance(self):
        protocol = ExistsEqualProtocol(0)
        assert protocol.run([], [], seed=0).alice_output is False

    def test_validation(self):
        with pytest.raises(ValueError):
            ExistsEqualProtocol(-1)


class TestViaIntersection:
    def test_agrees_with_direct(self):
        rng = random.Random(5)
        for num_equal in (0, 1, 5):
            xs, ys = make_instance(rng, 32, num_equal)
            outcome = exists_equal_via_intersection(xs, ys, string_bits=48, seed=0)
            assert outcome.alice_output is (num_equal > 0)
            assert outcome.bob_output is (num_equal > 0)

    def test_cost_is_intersection_cost(self):
        rng = random.Random(6)
        xs, ys = make_instance(rng, 64, 4)
        outcome = exists_equal_via_intersection(xs, ys, string_bits=48, seed=0)
        assert outcome.total_bits < 64 * 64  # O(k) with the tree constants
