"""Differential suite: byte-backed bitstream engine vs the big-int oracle.

``tests/bigint_bits_reference.py`` is the original pure-big-int
implementation of ``repro.util.bits``, retained verbatim as an oracle.  The
shipped byte-backed engine must produce *bit-for-bit identical* encodings
and decodings for every codec -- any divergence would silently change
transcripts and invalidate every communication measurement in the repo.

All randomness is a seeded ``random.Random`` (no new dependencies); each
case round-trips through both implementations and cross-decodes (new
encoder -> oracle decoder and vice versa), so the two engines are pinned to
the same wire format, not merely each internally consistent.
"""

import random

import pytest

import bigint_bits_reference as ref
from repro.util import bits as new

SEED = 20260805
CASES = 200


def same_bits(a, b) -> bool:
    """Bit-for-bit equality across the two implementations."""
    return len(a) == len(b) and a.value == b.value


def transplant_to_ref(bits) -> "ref.BitString":
    """Re-home a new-engine BitString into the oracle's representation."""
    return ref.BitString(bits.value, len(bits))


def transplant_to_new(bits) -> "new.BitString":
    """Re-home an oracle BitString into the byte-backed representation."""
    return new.BitString(bits.value, len(bits))


class TestUintDifferential:
    def test_randomized(self):
        rng = random.Random(SEED)
        for _ in range(CASES):
            width = rng.randrange(0, 80)
            value = rng.randrange(1 << width) if width else 0
            a = new.encode_uint(value, width)
            b = ref.encode_uint(value, width)
            assert same_bits(a, b)
            assert new.decode_uint(a, width) == value
            assert ref.decode_uint(transplant_to_ref(a), width) == value
            assert new.decode_uint(transplant_to_new(b), width) == value


class TestGammaDifferential:
    def test_randomized(self):
        rng = random.Random(SEED + 1)
        for _ in range(CASES):
            value = rng.randrange(1 << rng.randrange(1, 48))
            a = new.encode_elias_gamma(value)
            b = ref.encode_elias_gamma(value)
            assert same_bits(a, b)
            assert new.decode_elias_gamma(a) == value
            assert ref.decode_elias_gamma(transplant_to_ref(a)) == value
            assert new.decode_elias_gamma(transplant_to_new(b)) == value

    def test_small_values_exhaustive(self):
        for value in range(512):
            assert same_bits(
                new.encode_elias_gamma(value), ref.encode_elias_gamma(value)
            )


class TestFixedListDifferential:
    def test_randomized(self):
        rng = random.Random(SEED + 2)
        for _ in range(CASES):
            width = rng.randrange(1, 33)
            count = rng.randrange(0, 100)
            values = [rng.randrange(1 << width) for _ in range(count)]
            a = new.encode_fixed_list(values, width)
            b = ref.encode_fixed_list(values, width)
            assert same_bits(a, b)
            assert new.decode_fixed_list(a, width) == values
            assert ref.decode_fixed_list(transplant_to_ref(a), width) == values
            assert new.decode_fixed_list(transplant_to_new(b), width) == values


class TestDeltaSortedSetDifferential:
    def test_randomized(self):
        rng = random.Random(SEED + 3)
        for _ in range(CASES):
            universe = 1 << rng.randrange(4, 30)
            count = rng.randrange(0, min(universe, 80))
            elements = rng.sample(range(universe), count)
            a = new.encode_delta_sorted_set(elements)
            b = ref.encode_delta_sorted_set(elements)
            assert same_bits(a, b)
            expected = sorted(elements)
            assert new.decode_delta_sorted_set(a) == expected
            assert ref.decode_delta_sorted_set(transplant_to_ref(a)) == expected
            assert new.decode_delta_sorted_set(transplant_to_new(b)) == expected


class TestWriterReaderDifferential:
    def test_mixed_write_script(self):
        # Replay one random interleaved script of every write kind on both
        # writers and demand identical final bit strings, then re-read the
        # script back through the byte-backed reader.
        rng = random.Random(SEED + 4)
        for _ in range(60):
            new_writer, ref_writer = new.BitWriter(), ref.BitWriter()
            script = []
            for _ in range(rng.randrange(1, 40)):
                kind = rng.randrange(4)
                if kind == 0:
                    bit = rng.randrange(2)
                    script.append(("bit", bit))
                    new_writer.write_bit(bit)
                    ref_writer.write_bit(bit)
                elif kind == 1:
                    width = rng.randrange(0, 40)
                    value = rng.randrange(1 << width) if width else 0
                    script.append(("uint", value, width))
                    new_writer.write_uint(value, width)
                    ref_writer.write_uint(value, width)
                elif kind == 2:
                    value = rng.randrange(1 << 20)
                    script.append(("gamma", value))
                    new_writer.write_gamma(value)
                    ref_writer.write_gamma(value)
                else:
                    width = rng.randrange(1, 24)
                    values = [
                        rng.randrange(1 << width)
                        for _ in range(rng.randrange(0, 50))
                    ]
                    script.append(("run", values, width))
                    new_writer.write_run(values, width)
                    # The oracle has no bulk API; element-wise is its
                    # definitional encoding.
                    for value in values:
                        ref_writer.write_uint(value, width)
            assert len(new_writer) == len(ref_writer)
            new_bits, ref_bits = new_writer.finish(), ref_writer.finish()
            assert same_bits(new_bits, ref_bits)

            reader = new.BitReader(new_bits)
            for op in script:
                if op[0] == "bit":
                    assert reader.read_bit() == op[1]
                elif op[0] == "uint":
                    assert reader.read_uint(op[2]) == op[1]
                elif op[0] == "gamma":
                    assert reader.read_gamma() == op[1]
                else:
                    assert reader.read_run(len(op[1]), op[2]) == op[1]
            reader.expect_exhausted()

    def test_write_bits_matches_oracle(self):
        rng = random.Random(SEED + 5)
        for _ in range(80):
            chunks = []
            for _ in range(rng.randrange(0, 12)):
                length = rng.randrange(0, 40)
                chunks.append(
                    (rng.randrange(1 << length) if length else 0, length)
                )
            new_writer, ref_writer = new.BitWriter(), ref.BitWriter()
            # Offset by a random prefix so both aligned and unaligned
            # write_bits paths are exercised.
            offset = rng.randrange(0, 9)
            new_writer.write_uint(0, offset)
            ref_writer.write_uint(0, offset)
            for value, length in chunks:
                new_writer.write_bits(new.BitString(value, length))
                ref_writer.write_bits(ref.BitString(value, length))
            assert same_bits(new_writer.finish(), ref_writer.finish())

    def test_read_bits_views_match_slices(self):
        rng = random.Random(SEED + 6)
        for _ in range(60):
            total = rng.randrange(1, 200)
            value = rng.randrange(1 << total)
            source = new.BitString(value, total)
            reader = new.BitReader(source)
            pos = 0
            while pos < total:
                take = rng.randrange(0, total - pos + 1)
                chunk = reader.read_bits(take)
                assert chunk == source[pos : pos + take]
                pos += take
                if take == 0:
                    # read one bit to guarantee progress
                    expected = source[pos]
                    assert reader.read_bit() == expected
                    pos += 1
            reader.expect_exhausted()

    def test_error_parity_on_malformed_reads(self):
        # Both engines must refuse the same malformed inputs.
        for make_reader in (
            lambda: new.BitReader(new.BitString(0, 5)),
            lambda: ref.BitReader(ref.BitString(0, 5)),
        ):
            with pytest.raises(ValueError):
                make_reader().read_gamma()  # all-zero suffix, no stop bit
            with pytest.raises(ValueError):
                make_reader().read_uint(6)  # longer than the message
            reader = make_reader()
            reader.read_uint(3)
            with pytest.raises(ValueError):
                reader.expect_exhausted()
