"""Run the docstring examples as tests.

Module docstrings double as the first documentation a reader sees; their
examples must stay executable.
"""

import doctest

import pytest

import repro.comm.engine
import repro.hashing.primes
import repro.util.bits
import repro.util.iterlog

DOCTESTED_MODULES = [
    repro.util.iterlog,
    repro.util.bits,
    repro.hashing.primes,
    repro.comm.engine,
]


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"
    assert results.attempted > 0, f"no doctests found in {module}"
