"""Tests for the tracing core: tracer, sinks, capture, env bootstrap."""

import json
import subprocess
import sys

import pytest

from repro import obs
from repro.obs.state import STATE
from repro.obs.trace import (
    JsonlSink,
    NullSink,
    RingBufferSink,
    Tracer,
    disable,
    enable,
    get_tracer,
)


class TestTracer:
    def test_emit_builds_the_envelope(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        record = tracer.emit("span.start", name="x")
        assert record["type"] == "span.start"
        assert record["name"] == "x"
        assert record["seq"] == 1
        assert isinstance(record["ts"], float)
        assert sink.events() == [record]

    def test_seq_is_monotone_per_tracer(self):
        tracer = Tracer([NullSink()])
        seqs = [tracer.emit("span.start", name="x")["seq"] for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_every_sink_sees_every_event(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = Tracer([a, b])
        tracer.emit("span.start", name="x")
        assert len(a) == len(b) == 1
        assert a.events() == b.events()

    def test_span_brackets_with_duration(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        with tracer.span("phase", stage=3):
            pass
        start, end = sink.events()
        assert start["type"] == "span.start" and start["stage"] == 3
        assert end["type"] == "span.end" and end["name"] == "phase"
        assert end["duration_s"] >= 0

    def test_span_end_fires_on_exception(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        with pytest.raises(RuntimeError):
            with tracer.span("phase"):
                raise RuntimeError("boom")
        assert [e["type"] for e in sink.events()] == ["span.start", "span.end"]


class TestRingBufferSink:
    def test_capacity_bound_and_dropped_counter(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer([sink])
        for i in range(5):
            tracer.emit("span.start", name=str(i))
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [e["name"] for e in sink.events()] == ["2", "3", "4"]

    def test_clear(self):
        sink = RingBufferSink(capacity=1)
        Tracer([sink]).emit("span.start", name="x")
        sink.clear()
        assert len(sink) == 0 and sink.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer([sink])
        tracer.emit("span.start", name="a")
        tracer.emit("span.end", name="a", duration_s=0.0)
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"

    def test_open_is_lazy(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        JsonlSink(str(path))
        assert not path.exists()

    def test_appends_across_sinks(self, tmp_path):
        # Two sinks on the same path (the multi-process story, single
        # process edition) interleave whole lines.
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            sink = JsonlSink(str(path))
            Tracer([sink]).emit("span.start", name="x")
            sink.close()
        assert len(path.read_text().splitlines()) == 2


class TestGlobalState:
    def test_enable_disable_flip_the_switch(self):
        previous = STATE.tracer
        try:
            tracer = enable()
            assert STATE.active and get_tracer() is tracer
            disable()
            assert not STATE.active and get_tracer() is None
        finally:
            STATE.install(previous)

    def test_capture_restores_previous_tracer(self):
        previous = STATE.tracer
        try:
            outer = enable()
            with obs.capture() as sink:
                assert get_tracer() is not outer
                get_tracer().emit("span.start", name="inner")
            assert get_tracer() is outer
            assert [e["name"] for e in sink.events()] == ["inner"]
            disable()
        finally:
            STATE.install(previous)

    def test_capture_restores_disabled_state(self):
        previous = STATE.tracer
        STATE.install(None)
        try:
            with obs.capture():
                assert STATE.active
            assert not STATE.active
        finally:
            STATE.install(previous)


class TestEnvBootstrap:
    def _run(self, env_extra, code):
        import os

        env = dict(os.environ)
        env.pop("REPRO_TRACE", None)
        env.pop("REPRO_TRACE_FILE", None)
        env.update(env_extra)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )

    def test_default_is_off(self):
        proc = self._run(
            {},
            "from repro.obs.state import STATE; print(STATE.active)",
        )
        assert proc.stdout.strip() == "False"

    def test_repro_trace_enables_ring_buffer(self):
        proc = self._run(
            {"REPRO_TRACE": "1"},
            "from repro.obs.state import STATE; print(STATE.active)",
        )
        assert proc.stdout.strip() == "True"

    def test_trace_file_env_routes_to_jsonl(self, tmp_path):
        path = tmp_path / "env_trace.jsonl"
        proc = self._run(
            {"REPRO_TRACE": "1", "REPRO_TRACE_FILE": str(path)},
            "import random\n"
            "from repro.core.tree_protocol import TreeProtocol\n"
            "from repro.workloads import make_instance\n"
            "rng = random.Random(0)\n"
            "S, T = make_instance(rng, 1 << 16, 64, 0.5)\n"
            "p = TreeProtocol(1 << 16, 64, rounds=1)\n"
            "p.run(S, T, seed=0)\n",
        )
        assert proc.returncode == 0, proc.stderr
        from repro.obs.schema import load_trace, validate_trace_events

        events = load_trace(str(path))
        assert validate_trace_events(events) == []
        assert any(e["type"] == "protocol.finish" for e in events)
