"""Fault injection on the BSP multiparty scheduler.

Covers the plan hooks the two-party engine cannot exercise -- per-message
drop/duplicate on addressed mail, within-round inbox reordering, fail-stop
player crashes -- plus the accounting rule (original payloads are charged)
and smoke-plan transparency.
"""

import pytest

from repro.comm.errors import (
    MessageToFinishedPlayer,
    ProtocolDeadlock,
)
from repro.faults import inject
from repro.faults.models import (
    Drop,
    Duplicate,
    PlayerCrash,
    ReorderWithinRound,
    smoke_model,
)
from repro.faults.plan import FaultPlan
from repro.multiparty.network import run_message_passing
from repro.util.bits import BitString, decode_uint, encode_uint


def sender_receiver():
    def sender(ctx):
        yield [("b", BitString(5, 4))]
        return None

    def receiver(ctx):
        inbox = yield []
        while not inbox:
            inbox = yield []
        return [payload for _, payload in inbox]

    return {"a": sender, "b": receiver}, {"a": None, "b": None}


def ring_players(size=4):
    def player(ctx):
        position = ctx.index
        names = ctx.players
        total = ctx.input
        if position == 0:
            yield [(names[1], encode_uint(total, 16))]
            return None
        inbox = yield []
        while not inbox:
            inbox = yield []
        (_, payload), = inbox
        total += decode_uint(payload, 16)
        if position + 1 < len(names):
            yield [(names[position + 1], encode_uint(total, 16))]
            return None
        return total

    return (
        {f"p{i}": player for i in range(size)},
        {f"p{i}": 10 * (i + 1) for i in range(size)},
    )


class TestDropAndDuplicate:
    def test_dropped_mail_surfaces_as_deadlock(self):
        fns, inputs = sender_receiver()
        plan = FaultPlan(Drop(1.0), seed=0)
        with pytest.raises(ProtocolDeadlock):
            run_message_passing(fns, inputs, fault_plan=plan)
        assert plan.counts == {"drop": 1}

    def test_duplicate_delivers_two_copies(self):
        fns, inputs = sender_receiver()
        plan = FaultPlan(Duplicate(1.0), seed=0)
        outcome = run_message_passing(fns, inputs, fault_plan=plan)
        assert outcome.outputs["b"] == [BitString(5, 4), BitString(5, 4)]

    def test_accounting_charges_the_original_payload(self):
        # Both a total drop and a total duplication leave the books
        # identical to the reliable run: the sender paid for what it sent.
        fns, inputs = sender_receiver()
        clean = run_message_passing(fns, inputs)
        fns, inputs = sender_receiver()
        duplicated = run_message_passing(
            fns, inputs, fault_plan=FaultPlan(Duplicate(1.0), seed=0)
        )
        assert duplicated.bits_sent == clean.bits_sent
        assert duplicated.bits_received == clean.bits_received
        fns, inputs = sender_receiver()
        plan = FaultPlan(Drop(1.0), seed=0)
        with pytest.raises(ProtocolDeadlock):
            run_message_passing(fns, inputs, fault_plan=plan)


class TestReorder:
    def burst_players(self):
        def burst(ctx):
            yield [
                ("b", BitString(1, 4)),
                ("b", BitString(2, 4)),
                ("b", BitString(3, 4)),
            ]
            return None

        def collect(ctx):
            inbox = yield []
            while not inbox:
                inbox = yield []
            return [payload.value for _, payload in inbox]

        return {"a": burst, "b": collect}, {"a": None, "b": None}

    def test_inbox_shuffled_within_the_round(self):
        orders = set()
        for seed in range(8):
            fns, inputs = self.burst_players()
            plan = FaultPlan(ReorderWithinRound(1.0), seed=seed)
            outcome = run_message_passing(fns, inputs, fault_plan=plan)
            assert sorted(outcome.outputs["b"]) == [1, 2, 3]
            assert plan.counts.get("reorder") == 1
            orders.add(tuple(outcome.outputs["b"]))
        assert len(orders) > 1  # some seed actually permuted the inbox

    def test_reorder_is_seed_deterministic(self):
        results = []
        for _ in range(2):
            fns, inputs = self.burst_players()
            plan = FaultPlan(ReorderWithinRound(1.0), seed=3)
            outcome = run_message_passing(fns, inputs, fault_plan=plan)
            results.append((outcome.outputs["b"], plan.log))
        assert results[0] == results[1]


class TestPlayerCrash:
    def test_crashed_player_outputs_none_and_mail_to_it_raises(self):
        fns, inputs = sender_receiver()
        plan = FaultPlan(PlayerCrash(1.0, target="b"), seed=0)
        with pytest.raises(MessageToFinishedPlayer) as excinfo:
            run_message_passing(fns, inputs, fault_plan=plan)
        assert excinfo.value.player == "b"
        assert excinfo.value.undelivered == 1
        assert plan.counts == {"crash": 1}

    def test_survivors_finish_when_crash_victim_is_not_needed(self):
        # Crash a bystander nobody mails: the rest of the group completes
        # and only the victim's output is lost.
        fns, inputs = sender_receiver()

        def bystander(ctx):
            yield []
            return "alive"

        fns["c"] = bystander
        inputs["c"] = None
        plan = FaultPlan(PlayerCrash(1.0, target="c"), seed=0)
        outcome = run_message_passing(fns, inputs, fault_plan=plan)
        assert outcome.outputs["c"] is None
        assert outcome.outputs["b"] == [BitString(5, 4)]
        assert plan.counts == {"crash": 1}

    def test_whole_group_crash_terminates_cleanly(self):
        fns, inputs = ring_players(3)
        plan = FaultPlan(PlayerCrash(1.0, max_crashes=3), seed=0)
        outcome = run_message_passing(fns, inputs, fault_plan=plan)
        assert all(output is None for output in outcome.outputs.values())
        assert outcome.total_bits == 0
        assert outcome.rounds == 0


class TestSmokeTransparency:
    def test_smoke_plan_is_bit_identical_and_silent(self):
        fns, inputs = ring_players(4)
        clean = run_message_passing(fns, inputs)
        fns, inputs = ring_players(4)
        plan = FaultPlan(smoke_model(), seed=0)
        smoked = run_message_passing(fns, inputs, fault_plan=plan)
        assert smoked.outputs == clean.outputs
        assert smoked.bits_sent == clean.bits_sent
        assert smoked.rounds == clean.rounds
        assert plan.injected == 0
        assert plan.log == []


class TestGlobalPlanFallback:
    def test_installed_plan_reaches_the_scheduler(self):
        fns, inputs = sender_receiver()
        with inject(Drop(1.0), seed=0) as plan:
            with pytest.raises(ProtocolDeadlock):
                run_message_passing(fns, inputs)
        assert plan.counts == {"drop": 1}
        # ...and the channel is reliable again outside the context.
        fns, inputs = sender_receiver()
        outcome = run_message_passing(fns, inputs)
        assert outcome.outputs["b"] == [BitString(5, 4)]

    def test_explicit_plan_wins_over_global(self):
        fns, inputs = sender_receiver()
        explicit = FaultPlan(smoke_model(), seed=0)
        with inject(Drop(1.0), seed=0) as global_plan:
            outcome = run_message_passing(fns, inputs, fault_plan=explicit)
        assert outcome.outputs["b"] == [BitString(5, 4)]
        assert global_plan.injected == 0
