"""Property-based tests (hypothesis) over the core protocols.

Strategy notes: randomized protocols have nonzero failure probability, so
hypothesis properties assert only the *probability-1* invariants (sandwich
containment, one-sidedness, Corollary 3.4 agreement-implies-exact) for
weak-confidence configurations, and exactness only where the failure
probability is negligible relative to the example count (amplified /
deterministic protocols, or wide fingerprints).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tree_protocol import TreeProtocol
from repro.faults.models import BitFlip, Compose, Drop, Duplicate, Truncate
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, run_with_retry
from repro.protocols.basic_intersection import BasicIntersectionProtocol
from repro.protocols.bucket_verify import BucketVerifyProtocol
from repro.protocols.equality import EqualityProtocol
from repro.protocols.fknn import AmortizedEqualityProtocol
from repro.protocols.trivial import TrivialExchangeProtocol

UNIVERSE = 1 << 14
MAX_K = 48

set_strategy = st.frozensets(
    st.integers(0, UNIVERSE - 1), min_size=0, max_size=MAX_K
)
instance_strategy = st.tuples(set_strategy, set_strategy)
slow_ok = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestTrivialProtocolProperties:
    @slow_ok
    @given(instance_strategy)
    def test_always_exact(self, instance):
        s, t = instance
        outcome = TrivialExchangeProtocol(UNIVERSE, MAX_K).run(s, t, seed=0)
        assert outcome.alice_output == s & t
        assert outcome.bob_output == s & t

    @slow_ok
    @given(instance_strategy)
    def test_cost_depends_only_on_inputs(self, instance):
        s, t = instance
        protocol = TrivialExchangeProtocol(UNIVERSE, MAX_K)
        assert (
            protocol.run(s, t, seed=0).total_bits
            == protocol.run(s, t, seed=99).total_bits
        )


class TestTreeProtocolInvariants:
    @slow_ok
    @given(instance_strategy, st.integers(1, 4), st.integers(0, 5))
    def test_sandwich_invariant(self, instance, rounds, seed):
        # Probability-1 property: outputs always sandwich the intersection,
        # even with the weakest confidence exponent.
        s, t = instance
        protocol = TreeProtocol(
            UNIVERSE, MAX_K, rounds=rounds, confidence_exponent=1
        )
        outcome = protocol.run(s, t, seed=seed)
        assert s & t <= outcome.alice_output <= s
        assert s & t <= outcome.bob_output <= t

    @slow_ok
    @given(instance_strategy, st.integers(2, 4), st.integers(0, 5))
    def test_agreement_implies_exact(self, instance, rounds, seed):
        # Proposition 3.9 as a universal property.
        s, t = instance
        protocol = TreeProtocol(
            UNIVERSE, MAX_K, rounds=rounds, confidence_exponent=1
        )
        outcome = protocol.run(s, t, seed=seed)
        if outcome.alice_output == outcome.bob_output:
            assert outcome.alice_output == s & t

    @slow_ok
    @given(instance_strategy)
    def test_default_configuration_exact(self, instance):
        # At the default confidence the failure probability is far below
        # 1/examples, so exactness is a safe property to demand.
        s, t = instance
        outcome = TreeProtocol(UNIVERSE, MAX_K).run(s, t, seed=0)
        assert outcome.alice_output == s & t

    @slow_ok
    @given(instance_strategy, st.integers(1, 4))
    def test_round_budget(self, instance, rounds):
        s, t = instance
        outcome = TreeProtocol(UNIVERSE, MAX_K, rounds=rounds).run(s, t, seed=0)
        assert outcome.num_messages <= max(2, 6 * rounds)


class TestBasicIntersectionInvariants:
    @slow_ok
    @given(instance_strategy, st.integers(0, 3), st.integers(0, 5))
    def test_lemma_3_3_probability_one_parts(self, instance, exponent, seed):
        s, t = instance
        protocol = BasicIntersectionProtocol(UNIVERSE, MAX_K, exponent=exponent)
        outcome = protocol.run(s, t, seed=seed)
        assert outcome.alice_output <= s
        assert outcome.bob_output <= t
        assert s & t <= (outcome.alice_output & outcome.bob_output)
        if not s & t:
            assert not (outcome.alice_output & outcome.bob_output)
        if outcome.alice_output == outcome.bob_output:
            assert outcome.alice_output == s & t


class TestEqualityProperties:
    @slow_ok
    @given(
        st.frozensets(st.integers(0, 1 << 20), max_size=30), st.integers(0, 3)
    )
    def test_equal_inputs_always_accepted(self, value, seed):
        outcome = EqualityProtocol(width=4).run(value, set(value), seed=seed)
        assert outcome.alice_output is True

    @slow_ok
    @given(st.integers(0, 1 << 30), st.integers(0, 1 << 30))
    def test_wide_fingerprints_decide_correctly(self, x, y):
        outcome = EqualityProtocol(width=64).run(x, y, seed=0)
        assert outcome.alice_output == (x == y)


FAULT_MODELS = {
    "bitflip": lambda: BitFlip(0.1),
    "truncate": lambda: Truncate(0.1),
    "drop": lambda: Drop(0.05),
    "duplicate": lambda: Duplicate(0.05),
    "compose": lambda: Compose(BitFlip(0.05), Drop(0.02), Duplicate(0.02)),
}

fault_examples = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)


@pytest.mark.parametrize(
    "model_name", sorted(FAULT_MODELS), ids=sorted(FAULT_MODELS)
)
class TestFaultSweepInvariants:
    """The probability-1 invariants must survive *every* fault model.

    Under channel damage the surviving guarantees are the local ones:
    outputs are subsets of own inputs (enforced by local filtering), the
    retry wrapper never raises, degradation returns exactly the certified
    supersets, and a session the schedule left untouched behaves like a
    reliable one.
    """

    @fault_examples
    @given(instance_strategy, st.integers(0, 10_000))
    def test_retry_outcome_invariants(self, model_name, instance, seed):
        s, t = instance
        protocol = BucketVerifyProtocol(UNIVERSE, MAX_K)
        plan = FaultPlan(FAULT_MODELS[model_name](), seed=seed)
        outcome = run_with_retry(
            protocol, s, t, seed=seed, plan=plan,
            policy=RetryPolicy(max_attempts=3),
        )
        assert outcome.alice_output <= s
        assert outcome.bob_output <= t
        if outcome.degraded:
            # The degradation contract, exactly.
            assert outcome.degraded_mode == "superset"
            assert outcome.alice_output == s and outcome.bob_output == t
            assert len(outcome.failure_reasons) == 3
        else:
            assert outcome.agreed
        if plan.injected == 0 and not outcome.degraded:
            # A schedule that never fired is a reliable channel.
            assert outcome.correct_for(s, t)

    @fault_examples
    @given(instance_strategy, st.integers(0, 10_000))
    def test_raw_protocol_subsets_survive(self, model_name, instance, seed):
        # Below the retry layer: a single faulty run either raises one of
        # the engine's typed errors (or a strict-codec ValueError) or
        # completes with locally-filtered outputs.
        from repro.comm.errors import ProtocolError

        s, t = instance
        protocol = BasicIntersectionProtocol(UNIVERSE, MAX_K)
        plan = FaultPlan(FAULT_MODELS[model_name](), seed=seed)
        try:
            outcome = protocol.run(
                s, t, seed=seed, fault_injector=plan.inject_two_party
            )
        except (ProtocolError, ValueError):
            return
        assert outcome.alice_output <= s
        assert outcome.bob_output <= t


class TestAmortizedEqualityProperties:
    @slow_ok
    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, 255)),
            min_size=0,
            max_size=40,
        )
    )
    def test_unequal_never_misreported(self, pairs):
        # One-sidedness: every truly-equal pair must be reported equal.
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        outcome = AmortizedEqualityProtocol(len(pairs)).run(xs, ys, seed=0)
        for verdict, (x, y) in zip(outcome.alice_output, pairs):
            if x == y:
                assert verdict

    @slow_ok
    @given(st.lists(st.integers(0, 10**9), max_size=40))
    def test_identical_sequences_all_equal(self, values):
        outcome = AmortizedEqualityProtocol(len(values)).run(
            values, list(values), seed=0
        )
        assert all(outcome.alice_output)
