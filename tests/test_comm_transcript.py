"""Tests for transcript accounting."""

from repro.comm.transcript import Transcript
from repro.util.bits import BitString


def bits(n):
    return BitString(0, n)


class TestTranscript:
    def test_empty(self):
        transcript = Transcript()
        assert transcript.total_bits == 0
        assert transcript.num_messages == 0
        assert transcript.senders == []

    def test_single_send(self):
        transcript = Transcript()
        transcript.record_send("alice", bits(10))
        assert transcript.total_bits == 10
        assert transcript.num_messages == 1
        assert transcript.bits_sent_by("alice") == 10
        assert transcript.bits_sent_by("bob") == 0

    def test_same_sender_merges(self):
        transcript = Transcript()
        transcript.record_send("alice", bits(3))
        transcript.record_send("alice", bits(4))
        assert transcript.num_messages == 1
        assert transcript.total_bits == 7
        assert transcript.messages[0].num_bits == 7
        assert len(transcript.messages[0].chunks) == 2

    def test_alternation_opens_new_messages(self):
        transcript = Transcript()
        for sender in ["alice", "bob", "alice", "alice", "bob"]:
            transcript.record_send(sender, bits(1))
        assert transcript.num_messages == 4  # alice, bob, alice+alice, bob

    def test_zero_bit_first_send_does_not_open_message(self):
        # The pinned convention: zero-length payloads are delivered by the
        # engine but invisible to the accounting.  An empty first send must
        # not open a message (num_messages is the round complexity; a free
        # send is not a round).
        transcript = Transcript()
        transcript.record_send("alice", bits(0))
        assert transcript.total_bits == 0
        assert transcript.num_messages == 0
        assert transcript.senders == []

    def test_zero_bit_send_between_rounds_does_not_open_message(self):
        transcript = Transcript()
        transcript.record_send("alice", bits(2))
        transcript.record_send("bob", bits(0))  # would have opened pre-fix
        transcript.record_send("bob", bits(4))
        assert transcript.num_messages == 2
        assert transcript.total_bits == 6
        assert transcript.bits_sent_by("bob") == 4

    def test_zero_bit_trailing_send_does_not_open_message(self):
        transcript = Transcript()
        transcript.record_send("alice", bits(2))
        transcript.record_send("bob", bits(3))
        transcript.record_send("alice", bits(0))  # trailing empty send
        assert transcript.num_messages == 2
        assert transcript.total_bits == 5

    def test_zero_bit_send_merges_into_open_same_sender_message(self):
        # A same-sender empty send merges into the already-open message
        # (zero bits, one more chunk) -- merging is free, so there is no
        # reason to special-case it away.
        transcript = Transcript()
        transcript.record_send("alice", bits(3))
        transcript.record_send("alice", bits(0))
        assert transcript.num_messages == 1
        assert transcript.messages[0].num_bits == 3
        assert len(transcript.messages[0].chunks) == 2

    def test_senders_in_first_send_order(self):
        transcript = Transcript()
        transcript.record_send("bob", bits(1))
        transcript.record_send("alice", bits(1))
        transcript.record_send("bob", bits(1))
        assert transcript.senders == ["bob", "alice"]

    def test_merge_from(self):
        parent = Transcript()
        parent.record_send("alice", bits(5))
        child = Transcript()
        child.record_send("alice", bits(3))
        child.record_send("bob", bits(2))
        parent.merge_from(child)
        assert parent.total_bits == 10
        # alice's trailing message merges with the child's leading alice send
        assert parent.num_messages == 2
        assert parent.bits_sent_by("alice") == 8
        assert parent.bits_sent_by("bob") == 2

    def test_running_counters_match_recount_after_10k_messages(self):
        # total_bits / num_messages / per-sender / per-message counters are
        # maintained incrementally on append; after 10k messages they must
        # agree exactly with a from-scratch recount over the chunks.
        import random

        rng = random.Random(99)
        transcript = Transcript()
        for i in range(10_000):
            sender = rng.choice(["alice", "bob"])
            for _ in range(rng.randrange(1, 4)):
                transcript.record_send(sender, bits(rng.randrange(0, 64)))

        recount_total = sum(
            len(chunk) for m in transcript.messages for chunk in m.chunks
        )
        assert transcript.total_bits == recount_total
        assert transcript.num_messages == len(transcript.messages)
        for message in transcript.messages:
            assert message.num_bits == sum(len(c) for c in message.chunks)
        for sender in ("alice", "bob"):
            assert transcript.bits_sent_by(sender) == sum(
                m.num_bits for m in transcript.messages if m.sender == sender
            )

    def test_message_append_chunk_keeps_counter(self):
        from repro.comm.transcript import Message

        message = Message(sender="alice", chunks=[bits(3)])
        assert message.num_bits == 3
        message.append_chunk(bits(5))
        assert message.num_bits == 8
        assert len(message.chunks) == 2

    def test_repr_mentions_key_stats(self):
        transcript = Transcript()
        transcript.record_send("alice", bits(9))
        text = repr(transcript)
        assert "bits=9" in text
        assert "messages=1" in text
