"""Tests for union / symmetric-difference recovery (the counterpoint)."""

import math
import random

from conftest import make_instance
from repro.applications.union_set import (
    recover_symmetric_difference,
    recover_union,
)


class TestCorrectness:
    def test_union_exact(self, rng, overlap_fraction):
        s, t = make_instance(rng, 1 << 18, 64, overlap_fraction)
        report = recover_union(s, t, universe_size=1 << 18, max_set_size=64)
        assert report.result == s | t
        assert report.messages == 2

    def test_symmetric_difference_exact(self, rng, overlap_fraction):
        s, t = make_instance(rng, 1 << 18, 64, overlap_fraction)
        report = recover_symmetric_difference(
            s, t, universe_size=1 << 18, max_set_size=64
        )
        assert report.result == s ^ t

    def test_empty_sets(self):
        report = recover_union(set(), set(), universe_size=16, max_set_size=4)
        assert report.result == frozenset()


class TestTheCounterpoint:
    def test_union_cost_grows_with_universe(self):
        # Omega(k log(n/k)) for any rounds: the cost must climb with the
        # density ratio, unlike every intersection protocol in this repo.
        rng = random.Random(0)
        k = 128
        costs = {}
        for log_ratio in (4, 12, 20):
            n = k << log_ratio
            s, t = make_instance(rng, n, k, 0.5)
            costs[log_ratio] = recover_union(
                s, t, universe_size=n, max_set_size=k
            ).bits
        assert costs[12] > 1.5 * costs[4]
        assert costs[20] > 1.3 * costs[12]

    def test_union_near_information_bound(self):
        # Gap coding is within a small constant of log2 C(n, k) per side.
        rng = random.Random(1)
        n, k = 1 << 24, 256
        s, t = make_instance(rng, n, k, 0.0)
        report = recover_union(s, t, universe_size=n, max_set_size=k)
        entropy = 2 * math.log2(math.comb(n, k))  # both sets cross the wire
        assert report.bits <= 2.0 * entropy
        assert report.bits >= 0.9 * entropy

    def test_intersection_beats_union_at_scale(self):
        from repro.core.tree_protocol import TreeProtocol

        rng = random.Random(2)
        k = 256
        n = k << 20
        s, t = make_instance(rng, n, k, 0.5)
        union_bits = recover_union(
            s, t, universe_size=n, max_set_size=k
        ).bits
        intersection_bits = TreeProtocol(n, k).run(s, t, seed=0).total_bits
        assert intersection_bits < union_bits
