"""Cross-module integration tests: every protocol, one instance, one answer."""

import random

import pytest

from conftest import make_instance
from repro.core.amplify import AmplifiedIntersection
from repro.core.private_model import PrivateCoinIntersection
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.bucket_verify import BucketVerifyProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.sqrt_k import SqrtKProtocol
from repro.protocols.trivial import TrivialExchangeProtocol

N, K = 1 << 18, 96


def all_protocols():
    return [
        TrivialExchangeProtocol(N, K),
        OneRoundHashingProtocol(N, K),
        BucketVerifyProtocol(N, K),
        SqrtKProtocol(N, K),
        TreeProtocol(N, K, rounds=1),
        TreeProtocol(N, K, rounds=2),
        TreeProtocol(N, K, rounds=4),
        AmplifiedIntersection(N, K),
        PrivateCoinIntersection(N, K),
    ]


class TestCrossProtocolAgreement:
    @pytest.mark.parametrize(
        "protocol", all_protocols(), ids=lambda p: f"{p.name}-r{getattr(p, 'rounds', '-')}"
    )
    def test_every_protocol_recovers_the_same_intersection(
        self, rng, protocol, overlap_fraction
    ):
        s, t = make_instance(rng, N, K, overlap_fraction)
        outcome = protocol.run(s, t, seed=42)
        assert outcome.alice_output == s & t
        assert outcome.bob_output == s & t

    def test_protocol_hierarchy_of_costs(self, rng):
        # The paper's landscape on one instance: at large n/k, the trivial
        # exchange must lose to the randomized protocols, and the optimal
        # tree point must (weakly) beat the one-round hash exchange.
        s, t = make_instance(rng, N, K, 0.5)
        costs = {
            protocol.name: protocol.run(s, t, seed=7).total_bits
            for protocol in [
                TrivialExchangeProtocol(N, K, both_outputs=False),
                OneRoundHashingProtocol(N, K),
                TreeProtocol(N, K),
            ]
        }
        assert costs["verification-tree"] < costs["one-round-hashing"]

    def test_applications_consistent_with_direct_protocols(self, rng):
        from repro.applications import set_statistics

        s, t = make_instance(rng, N, K, 0.5)
        report = set_statistics(s, t, universe_size=N, max_set_size=K)
        direct = TreeProtocol(N, K).run(s, t, seed=0)
        assert report.intersection == direct.alice_output


class TestMultipartyConsistency:
    def test_two_player_multiparty_matches_two_party(self):
        from repro.multiparty.coordinator import CoordinatorIntersection

        rng = random.Random(300)
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        multi = CoordinatorIntersection(1 << 16, 64).run([s, t], seed=0)
        assert multi.intersection == s & t

    def test_coordinator_and_tree_schemes_agree(self):
        from repro.multiparty.binary_tree import BinaryTreeIntersection
        from repro.multiparty.coordinator import CoordinatorIntersection

        rng = random.Random(301)
        common = set(rng.sample(range(1 << 16), 10))
        sets = [
            frozenset(common | set(rng.sample(range(1 << 16), 40)))
            for _ in range(6)
        ]
        a = CoordinatorIntersection(1 << 16, 64).run(sets, seed=1)
        b = BinaryTreeIntersection(1 << 16, 64).run(sets, seed=1)
        assert a.intersection == b.intersection
        assert a.intersection == frozenset.intersection(*sets)


class TestSeedStability:
    def test_runs_are_replayable(self, rng):
        s, t = make_instance(rng, N, K, 0.5)
        protocol = TreeProtocol(N, K)
        first = protocol.run(s, t, seed=11)
        second = protocol.run(s, t, seed=11)
        assert first.total_bits == second.total_bits
        assert first.num_messages == second.num_messages
        assert first.alice_output == second.alice_output

    def test_different_seeds_vary_cost_not_answer(self, rng):
        s, t = make_instance(rng, N, K, 0.5)
        protocol = TreeProtocol(N, K)
        outcomes = [protocol.run(s, t, seed=seed) for seed in range(8)]
        assert len({o.alice_output for o in outcomes}) == 1
        assert len({o.total_bits for o in outcomes}) > 1  # randomized cost


class TestStressShapes:
    def test_max_cardinality_identical_sets(self):
        rng = random.Random(302)
        s = frozenset(rng.sample(range(N), K))
        for protocol in (TreeProtocol(N, K), SqrtKProtocol(N, K)):
            outcome = protocol.run(s, s, seed=0)
            assert outcome.alice_output == s

    def test_adversarially_clustered_elements(self):
        # Consecutive integers stress the hash families (linear structure).
        s = frozenset(range(K))
        t = frozenset(range(K // 2, K // 2 + K))
        for protocol in all_protocols():
            outcome = protocol.run(s, t, seed=13)
            assert outcome.alice_output == s & t, protocol.name

    def test_universe_boundary_elements(self):
        s = frozenset({0, N - 1, N // 2})
        t = frozenset({0, N - 1, 7})
        for protocol in all_protocols():
            outcome = protocol.run(s, t, seed=17)
            assert outcome.alice_output == {0, N - 1}, protocol.name
