"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDemo:
    def test_default_demo(self):
        code, output = run_cli(["demo", "--k", "64"])
        assert code == 0
        assert "verification-tree" in output
        assert "correct: True" in output

    def test_rounds_flag(self):
        code, output = run_cli(["demo", "--k", "64", "--rounds", "1"])
        assert code == 0
        assert "one-round-hashing" in output

    def test_private_model(self):
        code, output = run_cli(["demo", "--k", "32", "--model", "private"])
        assert code == 0
        assert "private-coin-intersection" in output

    def test_amplified(self):
        code, output = run_cli(["demo", "--k", "32", "--amplified"])
        assert code == 0
        assert "amplified-intersection" in output


class TestIntersect:
    def test_file_intersection(self, tmp_path):
        file_a = tmp_path / "a.txt"
        file_b = tmp_path / "b.txt"
        file_a.write_text("1\n5\n9\n200\n")
        file_b.write_text("5\n77\n9\n")
        code, output = run_cli(["intersect", str(file_a), str(file_b)])
        assert code == 0
        lines = [line for line in output.splitlines() if not line.startswith("#")]
        assert lines == ["5", "9"]
        assert "2 common ids" in output

    def test_quiet_mode(self, tmp_path):
        file_a = tmp_path / "a.txt"
        file_b = tmp_path / "b.txt"
        file_a.write_text("3\n4\n")
        file_b.write_text("4\n")
        code, output = run_cli(
            ["intersect", str(file_a), str(file_b), "--quiet"]
        )
        assert code == 0
        assert output.strip() == "4"

    def test_blank_lines_ignored(self, tmp_path):
        file_a = tmp_path / "a.txt"
        file_b = tmp_path / "b.txt"
        file_a.write_text("3\n\n4\n\n")
        file_b.write_text("\n4\n")
        code, output = run_cli(
            ["intersect", str(file_a), str(file_b), "--quiet"]
        )
        assert output.strip() == "4"


class TestTradeoff:
    def test_curve_printed(self):
        code, output = run_cli(["tradeoff", "--k", "64", "--seeds", "2"])
        assert code == 0
        assert "log* k = 4" in output
        # one row per r in 1..log* k
        data_lines = [
            line for line in output.splitlines() if line.strip().startswith(("1", "2", "3", "4"))
        ]
        assert len(data_lines) >= 4


class TestProtocolsListing:
    def test_catalog(self):
        code, output = run_cli(["protocols"])
        assert code == 0
        assert "verification-tree" in output
        assert "Theorem 1.1" in output
        assert "Corollary 4.2" in output


class TestConformance:
    def test_shipped_protocol_passes(self):
        code, output = run_cli(
            ["conformance", "--protocol", "trivial", "--k", "16"]
        )
        assert code == 0
        assert output.startswith("PASS")

    def test_other_protocols_selectable(self):
        code, output = run_cli(
            ["conformance", "--protocol", "one-round", "--k", "16"]
        )
        assert code == 0
        assert "15 runs" in output


class TestExactCC:
    def test_equality(self):
        code, output = run_cli(["exact-cc", "--problem", "eq", "--size", "4"])
        assert code == 0
        assert "D(f) = 3" in output

    def test_disjointness(self):
        code, output = run_cli(
            ["exact-cc", "--problem", "disj", "--size", "2", "--max-set-size", "2"]
        )
        assert code == 0
        assert "DISJ" in output
        assert "D(f) =" in output

    def test_greater_than(self):
        code, output = run_cli(["exact-cc", "--problem", "gt", "--size", "4"])
        assert code == 0
        assert "D(f) = 3" in output


class TestRender:
    def test_sequence_chart(self):
        code, output = run_cli(["render", "--k", "64", "--rounds", "2"])
        assert code == 0
        assert "──▶" in output
        assert "total:" in output
        assert "stage anatomy" in output
        assert "correct: True" in output

    def test_r1_has_no_anatomy(self):
        code, output = run_cli(["render", "--k", "64", "--rounds", "1"])
        assert code == 0
        assert "stage anatomy" not in output
        assert "total:" in output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestBench:
    def test_quick_bench_writes_valid_report(self, tmp_path):
        import json

        from repro.perf.schema import validate_bench_report

        out_path = tmp_path / "BENCH_core.json"
        code, output = run_cli(
            ["bench", "--quick", "--trials", "4", "--workers", "2",
             "--out", str(out_path)]
        )
        assert code == 0
        assert "bit_identical=True" in output
        report = json.loads(out_path.read_text(encoding="utf-8"))
        assert validate_bench_report(report) == []

    def test_validate_accepts_good_report(self, tmp_path):
        out_path = tmp_path / "BENCH_core.json"
        run_cli(["bench", "--quick", "--trials", "2", "--workers", "1",
                 "--out", str(out_path)])
        code, output = run_cli(["bench", "--validate", str(out_path)])
        assert code == 0
        assert "OK" in output

    def test_validate_rejects_drifted_report(self, tmp_path):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 99}), encoding="utf-8")
        code, output = run_cli(["bench", "--validate", str(bad)])
        assert code == 1
        assert "schema_version" in output


class TestFaults:
    def test_sweep_prints_survival_table(self):
        code, output = run_cli(
            ["faults", "--k", "16", "--trials", "3", "--log-universe", "14",
             "--rates", "0.0,0.05", "--models", "bitflip",
             "--protocols", "bucket"]
        )
        assert code == 0
        assert "exact%" in output and "degraded%" in output
        rows = [line for line in output.splitlines()
                if line.startswith("bucket-verify")]
        assert len(rows) == 2  # one per rate
        # rate 0 is a reliable channel: all trials exact, no faults fired
        assert "  100.0" in rows[0] and "0.0" in rows[0]

    def test_multiple_protocols_and_models(self):
        code, output = run_cli(
            ["faults", "--k", "16", "--trials", "2", "--log-universe", "14",
             "--rates", "0.05", "--models", "drop,duplicate",
             "--protocols", "bucket,trivial"]
        )
        assert code == 0
        assert sum(1 for line in output.splitlines()
                   if line.startswith(("bucket-verify", "trivial"))) == 4

    def test_unknown_model_rejected(self):
        code, output = run_cli(
            ["faults", "--trials", "1", "--models", "gremlins"]
        )
        assert code == 2
        assert "unknown two-party fault model" in output

    def test_multiparty_only_model_rejected(self):
        code, output = run_cli(
            ["faults", "--trials", "1", "--models", "crash"]
        )
        assert code == 2

    def test_unknown_protocol_rejected(self):
        code, output = run_cli(
            ["faults", "--trials", "1", "--protocols", "nope"]
        )
        assert code == 2
        assert "unknown protocol" in output

    def test_malformed_rates_rejected(self):
        code, output = run_cli(["faults", "--trials", "1", "--rates", "lots"])
        assert code == 2
        assert "bad --rates" in output

    def test_out_of_range_rate_rejected(self):
        code, output = run_cli(["faults", "--trials", "1", "--rates", "1.5"])
        assert code == 2
        assert "bad rate" in output


class TestFaultsMultiparty:
    def test_churn_sweep_prints_survival_table(self, tmp_path):
        import json

        table = tmp_path / "table.json"
        code, output = run_cli(
            ["faults", "--multiparty", "--players", "3", "--k", "8",
             "--trials", "2", "--log-universe", "12",
             "--rates", "0.0,0.5", "--table-out", str(table)]
        )
        assert code == 0
        assert "survived%" in output and "recovered%" in output
        rows = [line for line in output.splitlines()
                if line.startswith(("coordinator", "binary-tree"))]
        assert len(rows) == 4  # 2 protocols x 2 rates
        # rate 0: every trial exact, nobody crashed
        assert "  100.0" in rows[0]
        document = json.loads(table.read_text(encoding="utf-8"))
        assert document["analysis"] == "multiparty-survival"
        assert len(document["cells"]) == 4
        for cell in document["cells"]:
            aggregate = cell["aggregate"]
            assert aggregate["inexact"] == 0
            assert aggregate["trials"] == 2

    def test_multiparty_m_axis(self):
        code, output = run_cli(
            ["faults", "--multiparty", "--players", "3,8", "--k", "8",
             "--trials", "1", "--log-universe", "12", "--rates", "0.3",
             "--protocols", "coordinator", "--models", "churn"]
        )
        assert code == 0
        rows = [line for line in output.splitlines()
                if line.startswith("coordinator")]
        assert len(rows) == 2  # one per m

    def test_two_party_protocol_rejected_in_multiparty_mode(self):
        code, output = run_cli(
            ["faults", "--multiparty", "--trials", "1",
             "--protocols", "bucket"]
        )
        assert code == 2
        assert "unknown multiparty protocol" in output

    def test_bad_players_rejected(self):
        code, output = run_cli(
            ["faults", "--multiparty", "--trials", "1", "--players", "two"]
        )
        assert code == 2
        assert "bad --players" in output

    def test_trace_validate_passes_on_a_traced_faulty_run(self, tmp_path):
        # Acceptance: a run under fault injection produces a trace the
        # schema validator accepts -- fault events are first-class citizens
        # of the taxonomy, not schema violations.
        import random

        from repro.faults.models import BitFlip
        from repro.faults.plan import FaultPlan
        from repro.faults.retry import run_with_retry
        from repro.obs.state import STATE
        from repro.obs.trace import JsonlSink, Tracer
        from repro.protocols.bucket_verify import BucketVerifyProtocol
        from repro.workloads import make_instance

        path = tmp_path / "faulty.jsonl"
        tracer = Tracer([JsonlSink(str(path))])
        previous = STATE.tracer
        STATE.install(tracer)
        try:
            rng = random.Random(0)
            protocol = BucketVerifyProtocol(1 << 14, 16)
            for trial in range(5):
                s, t = make_instance(rng, 1 << 14, 16, 0.5)
                run_with_retry(protocol, s, t, seed=trial,
                               plan=FaultPlan(BitFlip(0.2), seed=trial))
        finally:
            STATE.install(previous)
            tracer.close()
        code, output = run_cli(["trace", "--validate", str(path)])
        assert code == 0
        assert "OK" in output


class TestTrace:
    def test_run_writes_valid_trace_and_passes_checks(self, tmp_path):
        from repro.obs.schema import load_trace, validate_trace_events
        from repro.obs.state import STATE

        before = STATE.tracer
        path = tmp_path / "trace.jsonl"
        code, output = run_cli(
            ["trace", "--k", "64", "--rounds", "1", "--log-universe", "16",
             "--trials", "2", "--out", str(path)]
        )
        assert code == 0
        assert STATE.tracer is before  # global state restored
        assert "[PASS]" in output and "FAIL" not in output
        assert "rounds<=6r" in output
        events = load_trace(str(path))
        assert validate_trace_events(events) == []
        # Two trials -> two protocol runs in the file.
        assert sum(1 for e in events if e["type"] == "protocol.start") == 2

    def test_rollup_rounds_sum_to_reported_total(self, tmp_path):
        import re

        path = tmp_path / "trace.jsonl"
        code, output = run_cli(
            ["trace", "--k", "64", "--rounds", "2", "--log-universe", "16",
             "--out", str(path)]
        )
        assert code == 0
        (header,) = re.findall(r"run 0: .* -- (\d+) bits", output)
        round_bits = [int(b) for b in re.findall(r"round\s+\d+:\s+(\d+) bits", output)]
        assert sum(round_bits) == int(header)

    def test_no_check_skips_the_checker(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        code, output = run_cli(
            ["trace", "--k", "64", "--rounds", "1", "--log-universe", "16",
             "--out", str(path), "--no-check"]
        )
        assert code == 0
        assert "[PASS]" not in output

    def test_validate_accepts_its_own_output(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        run_cli(["trace", "--k", "64", "--rounds", "1", "--log-universe",
                 "16", "--out", str(path)])
        code, output = run_cli(["trace", "--validate", str(path)])
        assert code == 0
        assert "OK" in output

    def test_validate_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ts": 1.0, "seq": 1, "type": "no.such.event"}\n')
        code, output = run_cli(["trace", "--validate", str(bad)])
        assert code == 1
        assert "unknown event type" in output

    def test_validate_missing_file_fails_cleanly(self, tmp_path):
        code, output = run_cli(
            ["trace", "--validate", str(tmp_path / "nope.jsonl")]
        )
        assert code == 1
        assert "cannot read" in output


class TestPlan:
    PLAN_FLAGS = [
        "--protocols", "bucket", "--k", "8", "--log-universe", "10",
        "--trials", "4", "--shard-size", "2", "--seed", "5",
    ]

    def test_show_lists_shards(self):
        code, output = run_cli(["plan", "show"] + self.PLAN_FLAGS)
        assert code == 0
        assert "plan key:" in output
        assert "2 shards" in output
        assert output.count("shard ") == 2

    def test_run_prints_fingerprint_and_aggregates(self):
        code, output = run_cli(
            ["plan", "run", "--executor", "serial", "--cache", "0"]
            + self.PLAN_FLAGS
        )
        assert code == 0
        assert "counters_sha256:" in output
        assert "bucket n=1024 k=8" in output
        assert "trials=4" in output

    def test_halt_exits_3_then_resume_is_byte_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        base_args = ["plan", "run", "--executor", "serial"] + self.PLAN_FLAGS

        full = tmp_path / "full.json"
        code, _ = run_cli(base_args + ["--cache", "0", "--out", str(full)])
        assert code == 0

        code, output = run_cli(
            base_args + ["--cache", cache, "--halt-after", "1"]
        )
        assert code == 3
        assert "resume" in output

        resumed = tmp_path / "resumed.json"
        stats = tmp_path / "stats.json"
        code, output = run_cli(
            base_args
            + ["--cache", cache, "--out", str(resumed),
               "--stats-out", str(stats)]
        )
        assert code == 0
        assert "1 cached" in output
        assert resumed.read_bytes() == full.read_bytes()

        import json

        stats_doc = json.loads(stats.read_text())
        assert stats_doc["shards_cached"] == 1
        assert stats_doc["shards_executed"] == 1

    def test_plan_file_round_trip(self, tmp_path):
        import json

        from repro.plans import plan_to_dict
        from repro.cli import build_parser

        args = build_parser().parse_args(["plan", "show"] + self.PLAN_FLAGS)
        from repro.cli import _plan_from_args
        import io as _io

        plan = _plan_from_args(args, _io.StringIO())
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan_to_dict(plan)))
        code, output = run_cli(["plan", "show", "--file", str(path)])
        assert code == 0
        assert "plan key:" in output

    def test_unknown_protocol_exits_2(self):
        code, output = run_cli(
            ["plan", "run", "--protocols", "quantum", "--trials", "2"]
        )
        assert code == 2
        assert "unknown protocol" in output

    def test_bad_plan_file_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, output = run_cli(["plan", "show", "--file", str(bad)])
        assert code == 2
        assert "not valid JSON" in output

    def test_survival_plan_runs(self):
        code, output = run_cli(
            ["plan", "run", "--executor", "serial", "--cache", "0",
             "--analysis", "survival", "--fault-specs", "bitflip@0.02",
             "--max-attempts", "3", "--adaptive-budget"]
            + self.PLAN_FLAGS
        )
        assert code == 0
        assert "exact=" in output
        assert "bitflip@0.02" in output


class TestServe:
    # Tiny mixes keep these under a second each; the serving layer's own
    # behavior is covered in tests/test_serve_*.py -- this class pins the
    # CLI wiring: flags, gates, exit codes, artifact files.
    SMALL = ["--sessions", "6", "--ops", "3", "--log-universe", "20",
             "--set-sizes", "16", "--connections", "3", "--tick", "0.001"]

    def test_mix_template_round_trips_through_load(self, tmp_path):
        path = tmp_path / "mix.json"
        code, output = run_cli(["serve", "mix", "--out", str(path)])
        assert code == 0
        assert str(path) in output
        code, output = run_cli(
            ["serve", "load", "--mix", str(path), "--tick", "0.001"]
        )
        assert code == 0
        assert "coalesced" in output
        assert "fingerprint:" in output

    def test_inline_load_with_serial_check(self):
        code, output = run_cli(
            ["serve", "load", "--check-serial", "--require-no-shed"]
            + self.SMALL
        )
        assert code == 0
        assert "serial_match: True" in output
        assert "18/18 ok, 0 shed" in output

    def test_no_coalesce_runs_scalar(self):
        code, output = run_cli(["serve", "load", "--no-coalesce"] + self.SMALL)
        assert code == 0
        assert "scalar" in output
        assert "coalescer:" not in output

    def test_expect_shed_gate_passes_under_overload(self):
        code, output = run_cli(
            ["serve", "load", "--expect-shed", "--max-pending-global", "2",
             "--sessions", "8", "--ops", "6", "--log-universe", "20",
             "--set-sizes", "16", "--pipeline", "48", "--tick", "0.05"]
        )
        assert code == 0
        assert "backpressure OK" in output

    def test_expect_shed_gate_fails_without_overload(self):
        code, output = run_cli(["serve", "load", "--expect-shed"] + self.SMALL)
        assert code == 1
        assert "expected shedding" in output

    def test_bad_mix_file_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, output = run_cli(["serve", "load", "--mix", str(bad)])
        assert code == 2
        assert "not valid JSON" in output
        unknown = tmp_path / "unknown.json"
        unknown.write_text('{"name": "x", "sessons": 3}')
        code, output = run_cli(["serve", "load", "--mix", str(unknown)])
        assert code == 2
        assert "unknown mix keys" in output

    def test_artifact_files_are_valid_json(self, tmp_path):
        import json

        hist = tmp_path / "hist.json"
        report = tmp_path / "report.json"
        code, output = run_cli(
            ["serve", "load", "--hist-out", str(hist),
             "--report-out", str(report)] + self.SMALL
        )
        assert code == 0
        histogram = json.loads(hist.read_text())
        assert histogram["count"] == 18
        assert histogram["buckets"][-1]["le"] == "inf"
        document = json.loads(report.read_text())
        assert document["ops_ok"] == 18
        assert document["coalesce"] is True
