"""Bit-identity tests for the cross-session batch executor.

The contract under test: :func:`one_round_batch_results` is
field-for-field identical to ``compute_intersection(..., rounds=1)`` on
the same arguments, and the coalescer's seed assignment makes a batched
server session's history identical to the same session run serially.
"""

import asyncio
import random

import pytest

from conftest import make_instance
from repro.core.api import compute_intersection
from repro.serve import BatchCoalescer, SessionRegistry, coalescible
from repro.serve.coalescer import (
    PendingOp,
    one_round_batch_results,
    run_scalar_operation,
)
from repro.serve.wire import ServeError
from repro.session import IntersectionSession


def _mixed_requests(seed: int):
    rng = random.Random(seed)
    requests = []
    for universe, k in [(1 << 16, 8), (1 << 20, 64), (1 << 32, 64), (1 << 16, 200)]:
        for trial in range(3):
            s, t = make_instance(rng, universe, k, rng.choice([0.0, 0.3, 1.0]))
            requests.append((universe, k, s, t, rng.randrange(1 << 60)))
    return requests


class TestBatchExecutor:
    def test_identical_to_engine_path(self):
        requests = _mixed_requests(1)
        batched = one_round_batch_results(requests)
        for (universe, k, s, t, seed), result in zip(requests, batched):
            engine = compute_intersection(
                s, t, universe_size=universe, max_set_size=k,
                rounds=1, seed=seed,
            )
            assert result.intersection == engine.intersection
            assert result.bits == engine.bits
            assert result.messages == engine.messages
            assert result.protocol == engine.protocol
            assert result.rounds_parameter == engine.rounds_parameter
            assert result.parties_agree == engine.parties_agree

    def test_empty_sets(self):
        (result,) = one_round_batch_results([(1 << 16, 8, set(), set(), 5)])
        engine = compute_intersection(
            set(), set(), universe_size=1 << 16, max_set_size=8,
            rounds=1, seed=5,
        )
        assert result.intersection == frozenset()
        assert result.bits == engine.bits

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            one_round_batch_results([(1 << 16, 8, {1 << 16}, set(), 0)])


class TestCoalescible:
    def test_one_round_shared_is_coalescible(self):
        assert coalescible(IntersectionSession(1 << 20, 64, rounds=1))
        # k=2: optimal_rounds(2) == 1, so the default is the one-round shape.
        assert coalescible(IntersectionSession(1 << 20, 2))

    def test_other_shapes_are_not(self):
        assert not coalescible(IntersectionSession(1 << 20, 64, rounds=2))
        assert not coalescible(IntersectionSession(1 << 20, 64))
        assert not coalescible(
            IntersectionSession(1 << 20, 64, rounds=1, model="private")
        )
        assert not coalescible(
            IntersectionSession(1 << 20, 64, rounds=1, amplified=True)
        )


def _drive(registry, ops, *, coalesce: bool):
    """Submit ops to a coalescer and drain until every future resolves."""

    async def scenario():
        coalescer = BatchCoalescer(registry, coalesce=coalesce, tick_s=0.0)
        await coalescer.start()
        futures = []
        for key, kind, s, t in ops:
            future = asyncio.get_running_loop().create_future()
            futures.append(future)
            coalescer.submit(
                PendingOp(
                    entry=registry.get(key),
                    kind=kind,
                    alice_set=s,
                    bob_set=t,
                    future=future,
                )
            )
        outcomes = await asyncio.gather(*futures)
        await coalescer.stop()
        return outcomes, coalescer.stats

    return asyncio.run(scenario())


class TestCoalescerDrain:
    def _ops(self, rng, sessions=6, per_session=4):
        ops = []
        for j in range(per_session):
            for i in range(sessions):
                s, t = make_instance(rng, 1 << 20, 64, 0.5)
                kind = ["intersect", "size", "jaccard", "contains-any"][j % 4]
                ops.append((f"s{i}", kind, s, t))
        return ops

    def _registry(self, sessions=6):
        registry = SessionRegistry(0)
        for i in range(sessions):
            registry.open(
                f"s{i}", universe_size=1 << 20, max_set_size=64, rounds=1
            )
        return registry

    def test_coalesced_fingerprint_matches_scalar(self, rng):
        ops = self._ops(rng)
        scalar_registry = self._registry()
        _, scalar_stats = _drive(scalar_registry, ops, coalesce=False)
        coalesced_registry = self._registry()
        _, coalesced_stats = _drive(coalesced_registry, ops, coalesce=True)
        assert scalar_registry.fingerprint() == coalesced_registry.fingerprint()
        assert coalesced_stats.coalesced_ops > 0
        assert scalar_stats.coalesced_ops == 0
        assert scalar_stats.scalar_ops == len(ops)

    def test_histories_order_identical(self, rng):
        # Several ops for ONE session inside one tick must consume
        # consecutive operation seeds in submission order.
        ops = []
        for j in range(5):
            s, t = make_instance(rng, 1 << 20, 64, 0.5)
            ops.append(("s0", "size", s, t))
        batched = self._registry(1)
        _drive(batched, ops, coalesce=True)
        serial = SessionRegistry(0)
        serial.open("s0", universe_size=1 << 20, max_set_size=64, rounds=1)
        for key, kind, s, t in ops:
            run_scalar_operation(serial.get(key), kind, s, t)
        batched_history = batched.get("s0").session.stats().history
        serial_history = serial.get("s0").session.stats().history
        assert batched_history == serial_history

    def test_invalid_input_fails_only_that_op(self, rng):
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        registry = self._registry(2)

        async def scenario():
            coalescer = BatchCoalescer(registry, coalesce=True, tick_s=0.0)
            await coalescer.start()
            loop = asyncio.get_running_loop()
            good, bad, good2 = loop.create_future(), loop.create_future(), loop.create_future()
            coalescer.submit(
                PendingOp(entry=registry.get("s0"), kind="size",
                          alice_set=s, bob_set=t, future=good)
            )
            coalescer.submit(
                PendingOp(entry=registry.get("s1"), kind="size",
                          alice_set=[1 << 40], bob_set=[], future=bad)
            )
            coalescer.submit(
                PendingOp(entry=registry.get("s1"), kind="size",
                          alice_set=s, bob_set=t, future=good2)
            )
            value, _ = await good
            value2, _ = await good2
            with pytest.raises(ServeError) as excinfo:
                await bad
            await coalescer.stop()
            return value, value2, excinfo.value

        value, value2, error = asyncio.run(scenario())
        assert value == value2 == len(s & t)
        assert error.type == "invalid-input"

    def test_non_coalescible_session_takes_scalar_path(self, rng):
        # Multi-round sessions now coalesce through the round-barrier
        # driver, so the genuinely non-coalescible shapes are the private
        # model and a session with a fault plan (which must run the retry
        # loop per operation).
        registry = SessionRegistry(0)
        registry.open(
            "private",
            universe_size=1 << 20,
            max_set_size=64,
            rounds=2,
            model="private",
        )
        registry.open(
            "faulted",
            universe_size=1 << 20,
            max_set_size=64,
            rounds=2,
            faults="bitflip@0.0:seed=1",
        )
        registry.open("one", universe_size=1 << 20, max_set_size=64, rounds=1)
        ops = []
        for _ in range(3):
            s, t = make_instance(rng, 1 << 20, 64, 0.5)
            ops.append(("private", "size", s, t))
            ops.append(("faulted", "size", s, t))
            ops.append(("one", "size", s, t))
        _, stats = _drive(registry, ops, coalesce=True)
        assert stats.scalar_ops >= 6
        private_history = registry.get("private").session.stats().history
        assert all(
            record.protocol == "private-coin-intersection"
            for record in private_history
        )
        faulted_history = registry.get("faulted").session.stats().history
        assert all(
            record.protocol == "verification-tree"
            for record in faulted_history
        )

    def test_multi_round_sessions_coalesce_through_barrier(self, rng):
        registry = SessionRegistry(0)
        registry.open("a", universe_size=1 << 20, max_set_size=64, rounds=2)
        registry.open("b", universe_size=1 << 20, max_set_size=64, rounds=2)
        ops = []
        for _ in range(3):
            s, t = make_instance(rng, 1 << 20, 64, 0.5)
            ops.append(("a", "size", s, t))
            ops.append(("b", "size", s, t))
        _, stats = _drive(registry, ops, coalesce=True)
        assert stats.scalar_ops == 0
        assert stats.coalesced_ops == 6
        assert stats.barriers > 0
        for key in ("a", "b"):
            history = registry.get(key).session.stats().history
            assert all(
                record.protocol == "verification-tree" for record in history
            )

    def test_stop_fails_queued_ops_typed(self, rng):
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        registry = self._registry(1)

        async def scenario():
            coalescer = BatchCoalescer(registry, coalesce=True, tick_s=60.0)
            future = asyncio.get_running_loop().create_future()
            coalescer.submit(
                PendingOp(entry=registry.get("s0"), kind="size",
                          alice_set=s, bob_set=t, future=future)
            )
            await coalescer.stop()
            with pytest.raises(ServeError) as excinfo:
                await future
            return excinfo.value

        assert asyncio.run(scenario()).type == "shutting-down"
