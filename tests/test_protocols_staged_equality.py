"""Tests for staged equality (the [BCK+] discussion's asymmetry)."""

import pytest

from repro.protocols.staged_equality import StagedEqualityProtocol, stage_widths


class TestStageWidths:
    def test_geometric_plan(self):
        assert stage_widths(28, 3) == [4, 8, 16]

    def test_sum_is_exact(self):
        for total in (1, 7, 28, 100, 257):
            for stages in (1, 2, 3, 5):
                widths = stage_widths(total, stages)
                assert sum(widths) == total
                assert all(width >= 1 for width in widths)

    def test_single_stage(self):
        assert stage_widths(64, 1) == [64]

    def test_stages_capped_by_width(self):
        widths = stage_widths(2, 5)
        assert sum(widths) == 2
        assert len(widths) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            stage_widths(0, 3)
        with pytest.raises(ValueError):
            stage_widths(8, 0)


class TestStagedEquality:
    def test_equal_always_accepted(self):
        protocol = StagedEqualityProtocol(24, stages=3)
        for seed in range(30):
            outcome = protocol.run((1, 2, 3), (1, 2, 3), seed=seed)
            assert outcome.alice_output is True
            assert outcome.bob_output is True

    def test_unequal_rejected_whp(self):
        protocol = StagedEqualityProtocol(32, stages=4)
        for seed in range(30):
            outcome = protocol.run("a", "b", seed=seed)
            assert outcome.alice_output is False

    def test_verdicts_agree(self):
        protocol = StagedEqualityProtocol(12, stages=3)
        for seed in range(20):
            outcome = protocol.run(seed, seed + 1, seed=seed)
            assert outcome.alice_output == outcome.bob_output

    def test_unequal_is_much_cheaper_than_equal(self):
        # The [BCK+] asymmetry: verification of unequal inputs should end
        # at stage 1 almost always.
        protocol = StagedEqualityProtocol(64, stages=4)
        equal_bits = protocol.run("x", "x", seed=0).total_bits
        unequal_costs = [
            protocol.run(f"a{seed}", f"b{seed}", seed=seed).total_bits
            for seed in range(40)
        ]
        assert equal_bits == 64 + 4  # all stages + verdicts
        average_unequal = sum(unequal_costs) / len(unequal_costs)
        assert average_unequal < equal_bits / 3

    def test_round_structure(self):
        protocol = StagedEqualityProtocol(30, stages=3)
        equal_outcome = protocol.run(5, 5, seed=0)
        assert equal_outcome.num_messages == 6  # 2 per stage
        unequal_outcome = protocol.run(5, 6, seed=0)
        assert unequal_outcome.num_messages <= 6
        # first-stage rejection (the common case) is exactly 2 messages
        two_message_rejections = sum(
            1
            for seed in range(20)
            if protocol.run(seed, seed + 100, seed=seed).num_messages == 2
        )
        assert two_message_rejections >= 15

    def test_false_accept_rate_matches_total_width(self):
        # A tiny total width makes false accepts observable; the rate must
        # track 2^-total.
        protocol_width = 4
        false_accepts = 0
        trials = 600
        for seed in range(trials):
            protocol = StagedEqualityProtocol(protocol_width, stages=2)
            if protocol.run(seed, seed + 10**7, seed=seed).alice_output:
                false_accepts += 1
        assert false_accepts / trials == pytest.approx(
            2**-protocol_width, abs=0.04
        )

    def test_rejection_is_certain_evidence(self):
        # Equal inputs can never be rejected at any stage.
        protocol = StagedEqualityProtocol(8, stages=2)
        for seed in range(50):
            assert protocol.run("v", "v", seed=seed).alice_output is True
