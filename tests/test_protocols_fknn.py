"""Tests for the amortized-equality protocol (Theorem 3.2 interface)."""

import math
import random

import pytest

from repro.comm.errors import ProtocolAborted
from repro.protocols.fknn import AmortizedEqualityProtocol


def make_eq_instance(rng, k, unequal_fraction):
    xs = [rng.getrandbits(64) for _ in range(k)]
    ys = list(xs)
    unequal = rng.sample(range(k), int(round(unequal_fraction * k)))
    for index in unequal:
        ys[index] ^= 1 + rng.getrandbits(8)
    truth = tuple(x == y for x, y in zip(xs, ys))
    return xs, ys, truth


class TestCorrectness:
    @pytest.mark.parametrize("unequal_fraction", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_exact_verdicts(self, unequal_fraction):
        rng = random.Random(10)
        protocol = AmortizedEqualityProtocol(100)
        xs, ys, truth = make_eq_instance(rng, 100, unequal_fraction)
        outcome = protocol.run(xs, ys, seed=0)
        assert outcome.alice_output == truth
        assert outcome.bob_output == truth

    def test_many_seeds(self):
        rng = random.Random(11)
        protocol = AmortizedEqualityProtocol(64)
        failures = 0
        for seed in range(60):
            xs, ys, truth = make_eq_instance(rng, 64, 0.5)
            if protocol.run(xs, ys, seed=seed).alice_output != truth:
                failures += 1
        assert failures == 0

    def test_unequal_verdicts_are_one_sided(self):
        # A declared-unequal pair is *certainly* unequal: across many seeds,
        # no equal pair may ever be declared unequal.
        rng = random.Random(12)
        protocol = AmortizedEqualityProtocol(32)
        for seed in range(40):
            xs, ys, truth = make_eq_instance(rng, 32, 0.5)
            verdicts = protocol.run(xs, ys, seed=seed).alice_output
            for verdict, actually_equal in zip(verdicts, truth):
                if actually_equal:
                    assert verdict  # equal can never be declared unequal

    def test_zero_instances(self):
        protocol = AmortizedEqualityProtocol(0)
        outcome = protocol.run([], [], seed=0)
        assert outcome.alice_output == ()

    def test_single_instance(self):
        protocol = AmortizedEqualityProtocol(1)
        assert protocol.run(["a"], ["a"], seed=0).alice_output == (True,)
        assert protocol.run(["a"], ["b"], seed=0).alice_output == (False,)

    def test_arbitrary_values(self):
        protocol = AmortizedEqualityProtocol(3)
        xs = [(1, 2), frozenset({3}), "text"]
        ys = [(1, 2), frozenset({4}), "text"]
        assert protocol.run(xs, ys, seed=0).alice_output == (True, False, True)

    def test_length_mismatch_rejected(self):
        protocol = AmortizedEqualityProtocol(3)
        with pytest.raises(ValueError):
            protocol.run([1, 2], [1, 2, 3], seed=0)


class TestCost:
    def test_linear_communication(self):
        # Theorem 3.2: O(k) expected bits.  Per-instance cost must stay in a
        # constant band as k grows (the convergent series sum ~ 8-16 bits).
        rng = random.Random(13)
        per_instance = {}
        for k in (64, 256, 1024):
            xs, ys, _ = make_eq_instance(rng, k, 0.5)
            protocol = AmortizedEqualityProtocol(k)
            bits = protocol.run(xs, ys, seed=0).total_bits
            per_instance[k] = bits / k
        values = list(per_instance.values())
        assert max(values) < 40
        assert max(values) / min(values) < 2.5

    def test_rounds_within_sqrt_k_budget(self):
        # Our tournament takes O(log k) messages -- well inside Theorem
        # 3.2's O(sqrt(k)) round budget.
        rng = random.Random(14)
        k = 1024
        xs, ys, _ = make_eq_instance(rng, k, 0.5)
        outcome = AmortizedEqualityProtocol(k).run(xs, ys, seed=0)
        assert outcome.num_messages <= 8 * math.ceil(math.sqrt(k))
        assert outcome.num_messages <= 8 * (math.log2(k) + 2)

    def test_extreme_regimes_both_linear(self):
        # All-equal pays the full level ladder; all-unequal is killed almost
        # entirely by the level-0 individual tests.  Both must stay O(k).
        rng = random.Random(15)
        k = 256
        xs, _, _ = make_eq_instance(rng, k, 0.0)
        all_equal = AmortizedEqualityProtocol(k).run(xs, xs, seed=0)
        xs2, ys2, _ = make_eq_instance(rng, k, 1.0)
        all_unequal = AmortizedEqualityProtocol(k).run(xs2, ys2, seed=0)
        assert all_equal.total_bits < 40 * k
        assert all_unequal.total_bits < 40 * k
        # The all-unequal run collapses after level 0, so it uses fewer
        # messages than the full ladder.
        assert all_unequal.num_messages <= all_equal.num_messages

    def test_abort_on_zero_passes(self):
        protocol = AmortizedEqualityProtocol(4, max_passes=0)
        with pytest.raises(ProtocolAborted):
            protocol.run([1, 2, 3, 4], [1, 2, 3, 4], seed=0)

    def test_negative_instances_rejected(self):
        with pytest.raises(ValueError):
            AmortizedEqualityProtocol(-1)


class TestAdversarialShapes:
    def test_single_unequal_needle(self):
        # One unequal instance hidden among many equals: group testing must
        # isolate it exactly.
        rng = random.Random(16)
        k = 512
        xs = [rng.getrandbits(32) for _ in range(k)]
        ys = list(xs)
        ys[317] ^= 1
        truth = tuple(i != 317 for i in range(k))
        for seed in range(5):
            outcome = AmortizedEqualityProtocol(k).run(xs, ys, seed=seed)
            assert outcome.alice_output == truth

    def test_adjacent_unequal_block(self):
        rng = random.Random(17)
        k = 128
        xs = [rng.getrandbits(32) for _ in range(k)]
        ys = list(xs)
        for index in range(40, 60):
            ys[index] ^= 3
        truth = tuple(not (40 <= i < 60) for i in range(k))
        outcome = AmortizedEqualityProtocol(k).run(xs, ys, seed=0)
        assert outcome.alice_output == truth
