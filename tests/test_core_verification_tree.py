"""Tests for the verification-tree structure (Section 3.3)."""

import math

import pytest

from repro.core.verification_tree import VerificationTree
from repro.util.iterlog import iterated_log, log_star


class TestShape:
    def test_leaf_level(self):
        tree = VerificationTree(num_leaves=16, rounds=3)
        assert len(tree.levels[0]) == 16
        for index, leaf in enumerate(tree.levels[0]):
            assert leaf.num_leaves == 1
            assert leaf.leaf_start == index

    def test_root_covers_everything(self):
        for k in (1, 2, 7, 64, 1000):
            for r in (1, 2, 3):
                tree = VerificationTree(k, r)
                assert tree.root.leaf_start == 0
                assert tree.root.leaf_end == k
                assert len(tree.levels[r]) == 1

    def test_levels_partition_leaves(self):
        tree = VerificationTree(num_leaves=100, rounds=3)
        for level_nodes in tree.levels:
            covered = []
            for node in level_nodes:
                covered.extend(node.leaves)
            assert covered == list(range(100))

    def test_children_link_to_previous_level(self):
        tree = VerificationTree(num_leaves=64, rounds=3)
        for level in range(1, 4):
            for node in tree.levels[level]:
                child_cover = []
                for child_index in node.children:
                    child = tree.levels[level - 1][child_index]
                    child_cover.extend(child.leaves)
                assert child_cover == list(node.leaves)

    def test_coverage_targets_match_paper(self):
        # |C(v)| for v in L_i should be ~ log^(r-i) k.
        k, r = 65536, 4
        tree = VerificationTree(k, r)
        for level in range(1, r + 1):
            target = iterated_log(k, r - level)
            for node in tree.levels[level][:-1]:  # last node may be ragged
                assert node.num_leaves <= 2 * math.ceil(target)
                assert node.num_leaves >= math.ceil(target) / 2

    def test_level_sizes_match_paper(self):
        # |L_i| ~ k / log^(r-i) k.
        k, r = 65536, 4
        tree = VerificationTree(k, r)
        for level in range(1, r + 1):
            expected = k / iterated_log(k, r - level)
            actual = len(tree.levels[level])
            assert actual <= 2 * expected + 1
            assert actual >= expected / 2

    def test_exact_shape_at_power_tower(self):
        # k = 65536, r = 2: L_1 nodes cover log k = 16 leaves -> 4096 nodes.
        tree = VerificationTree(65536, 2)
        assert len(tree.levels[1]) == 65536 // 16
        assert all(node.num_leaves == 16 for node in tree.levels[1])

    def test_log_star_rounds_gives_constant_leaf_groups(self):
        k = 65536
        tree = VerificationTree(k, log_star(k))
        # At r = log* k the level-1 nodes cover log^(r-1) k = ~2 leaves.
        assert all(node.num_leaves <= 3 for node in tree.levels[1])


class TestDegenerateCases:
    def test_single_leaf(self):
        tree = VerificationTree(1, 2)
        assert tree.root.num_leaves == 1
        assert all(len(level) == 1 for level in tree.levels)

    def test_more_rounds_than_log_star(self):
        # Deeper iterates are all 1: the extra levels become chains, but the
        # structure stays consistent.
        tree = VerificationTree(8, 6)
        assert tree.root.num_leaves == 8
        for level_nodes in tree.levels:
            covered = sum(node.num_leaves for node in level_nodes)
            assert covered == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            VerificationTree(0, 1)
        with pytest.raises(ValueError):
            VerificationTree(4, 0)

    def test_repr(self):
        assert "leaves=4" in repr(VerificationTree(4, 2))


class TestCoverageTarget:
    def test_level_zero_is_one(self):
        tree = VerificationTree(100, 3)
        assert tree.coverage_target(0) == 1

    def test_root_target_is_k(self):
        tree = VerificationTree(100, 3)
        assert tree.coverage_target(3) == 100

    def test_monotone_in_level(self):
        tree = VerificationTree(4096, 4)
        targets = [tree.coverage_target(level) for level in range(5)]
        assert targets == sorted(targets)
