"""Tests for Carter-Wegman pairwise-independent hashing."""

import pytest

from repro.hashing.pairwise import (
    PAIRWISE_COLLISION_FACTOR,
    PairwiseHash,
    sample_pairwise_hash,
)
from repro.util.rng import SharedRandomness


class TestPairwiseHash:
    def test_range_respected(self):
        hash_fn = sample_pairwise_hash(1000, 17, SharedRandomness(1).stream("h"))
        assert all(0 <= hash_fn(x) < 17 for x in range(1000))

    def test_domain_validated(self):
        hash_fn = sample_pairwise_hash(100, 10, SharedRandomness(1).stream("h"))
        with pytest.raises(ValueError):
            hash_fn(100)
        with pytest.raises(ValueError):
            hash_fn(-1)

    def test_deterministic_across_parties(self):
        # Both parties deriving from the same label get the same function:
        # the crux of shared-randomness hashing.
        alice = sample_pairwise_hash(10_000, 64, SharedRandomness(5).stream("x"))
        bob = sample_pairwise_hash(10_000, 64, SharedRandomness(5).stream("x"))
        assert all(alice(e) == bob(e) for e in range(0, 10_000, 97))

    def test_different_labels_give_different_functions(self):
        shared = SharedRandomness(5)
        f = sample_pairwise_hash(10_000, 1 << 20, shared.stream("a"))
        g = sample_pairwise_hash(10_000, 1 << 20, shared.stream("b"))
        assert any(f(e) != g(e) for e in range(100))

    def test_output_bits(self):
        hash_fn = sample_pairwise_hash(1000, 1000, SharedRandomness(1).stream("h"))
        assert hash_fn.output_bits == 10
        hash_fn = sample_pairwise_hash(1000, 1024, SharedRandomness(1).stream("h"))
        assert hash_fn.output_bits == 10

    def test_description_bits_is_order_log_universe(self):
        hash_fn = sample_pairwise_hash(
            1 << 30, 64, SharedRandomness(1).stream("h")
        )
        assert hash_fn.description_bits <= 2 * 32  # 2 * ceil(log2 p)

    def test_hash_set_preserves_order(self):
        hash_fn = sample_pairwise_hash(100, 7, SharedRandomness(2).stream("h"))
        elements = [5, 3, 99]
        assert hash_fn.hash_set(elements) == [hash_fn(e) for e in elements]

    def test_is_collision_free_on(self):
        hash_fn = sample_pairwise_hash(
            10_000, 1 << 30, SharedRandomness(3).stream("h")
        )
        assert hash_fn.is_collision_free_on(range(50))
        tiny = sample_pairwise_hash(10_000, 2, SharedRandomness(3).stream("h"))
        assert not tiny.is_collision_free_on(range(50))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PairwiseHash(
                universe_size=100, range_size=10, prime=50, mult=1, shift=0
            )
        with pytest.raises(ValueError):
            PairwiseHash(
                universe_size=100, range_size=10, prime=101, mult=0, shift=0
            )
        with pytest.raises(ValueError):
            PairwiseHash(
                universe_size=100, range_size=0, prime=101, mult=1, shift=0
            )


class TestCollisionStatistics:
    def test_pair_collision_probability_bound(self):
        # Empirical Pr[h(x) = h(y)] over the family must respect the
        # PAIRWISE_COLLISION_FACTOR / t bound that every protocol's failure
        # analysis relies on.
        universe, range_size = 1 << 16, 64
        x, y = 12345, 54321
        trials, collisions = 2000, 0
        shared = SharedRandomness(7)
        for trial in range(trials):
            hash_fn = sample_pairwise_hash(
                universe, range_size, shared.stream(f"t{trial}")
            )
            if hash_fn(x) == hash_fn(y):
                collisions += 1
        bound = PAIRWISE_COLLISION_FACTOR / range_size
        # 3x slack over the bound for statistical noise (expected ~1/64).
        assert collisions / trials <= 3 * bound

    def test_single_value_roughly_uniform(self):
        universe, range_size = 1 << 16, 8
        counts = [0] * range_size
        shared = SharedRandomness(8)
        for trial in range(4000):
            hash_fn = sample_pairwise_hash(
                universe, range_size, shared.stream(f"t{trial}")
            )
            counts[hash_fn(777)] += 1
        for count in counts:
            assert 350 < count < 650  # expect 500 each

    def test_bucket_load_balance(self):
        # Hash 2k elements into k buckets: max load should be small
        # (the tree protocol's bucket-size analysis).
        k = 256
        hash_fn = sample_pairwise_hash(
            1 << 20, k, SharedRandomness(9).stream("load")
        )
        loads = [0] * k
        for element in range(0, 2 * k * 64, 64):
            loads[hash_fn(element)] += 1
        assert max(loads) < 16
