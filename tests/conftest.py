"""Shared fixtures and instance generators for the test suite.

Workload conventions:

* instances are generated from seeded :class:`random.Random` so every test
  is reproducible;
* ``make_instance`` controls the overlap fraction so tests cover the empty,
  partial, and full-intersection regimes the paper's protocols must all
  handle (the introduction stresses that handling large ``|S n T|`` is the
  hard part the DISJ protocols cannot do).
"""

from __future__ import annotations

import random

import pytest

from repro.util.rng import SharedRandomness

# The canonical planted-overlap instance generator lives in repro.workloads
# (shared with benchmarks/_harness.py); re-exported so tests keep doing
# ``from conftest import make_instance``.
from repro.workloads import make_instance  # noqa: F401


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests vary seeds explicitly where needed."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def shared() -> SharedRandomness:
    """A shared random string with a fixed master seed."""
    return SharedRandomness(12345)


@pytest.fixture(params=[0.0, 0.5, 1.0], ids=["disjoint", "half", "identical"])
def overlap_fraction(request) -> float:
    """Sweep the three overlap regimes."""
    return request.param
