"""Shared fixtures and instance generators for the test suite.

Workload conventions:

* instances are generated from seeded :class:`random.Random` so every test
  is reproducible;
* ``make_instance`` controls the overlap fraction so tests cover the empty,
  partial, and full-intersection regimes the paper's protocols must all
  handle (the introduction stresses that handling large ``|S n T|`` is the
  hard part the DISJ protocols cannot do).
"""

from __future__ import annotations

import random
from typing import FrozenSet, Tuple

import pytest

from repro.util.rng import SharedRandomness


def make_instance(
    rng: random.Random,
    universe_size: int,
    set_size: int,
    overlap_fraction: float,
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Build ``(S, T)`` with ``|S| = |T| = set_size`` and
    ``|S n T| ~= overlap_fraction * set_size``."""
    overlap = int(round(overlap_fraction * set_size))
    sample = rng.sample(range(universe_size), 2 * set_size - overlap)
    common = sample[:overlap]
    s_only = sample[overlap:set_size]
    t_only = sample[set_size:]
    return frozenset(common + s_only), frozenset(common + t_only)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests vary seeds explicitly where needed."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def shared() -> SharedRandomness:
    """A shared random string with a fixed master seed."""
    return SharedRandomness(12345)


@pytest.fixture(params=[0.0, 0.5, 1.0], ids=["disjoint", "half", "identical"])
def overlap_fraction(request) -> float:
    """Sweep the three overlap regimes."""
    return request.param
