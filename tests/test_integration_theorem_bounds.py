"""Aggregate validation of the paper's quantitative claims.

These are the *test-sized* versions of the benchmark experiments (see
EXPERIMENTS.md): modest trial counts, hard assertions.  The benchmarks run
the same measurements at larger scale and print the full tables.
"""

import random

from conftest import make_instance
from repro.comm.stats import TrialAggregator
from repro.core.tradeoff import communication_bound
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.trivial import TrivialExchangeProtocol
from repro.util.iterlog import log_star


class TestTheorem11:
    """Theorem 1.1: 6r rounds, O(k log^(r) k) expected bits, 1 - 1/poly(k)."""

    def test_full_tradeoff_grid(self):
        rng = random.Random(400)
        n = 1 << 22
        for k in (64, 512):
            for rounds in range(1, log_star(k) + 1):
                protocol = TreeProtocol(n, k, rounds=rounds)
                aggregator = TrialAggregator()
                for seed in range(8):
                    s, t = make_instance(rng, n, k, 0.5)
                    outcome = protocol.run(s, t, seed=seed)
                    aggregator.add(
                        bits=outcome.total_bits,
                        messages=outcome.num_messages,
                        correct=outcome.correct_for(s, t),
                    )
                report = aggregator.report()
                assert report.success_rate >= 0.99, (k, rounds)
                assert report.messages.maximum <= max(2, 6 * rounds)
                # expected bits within a generous constant of k log^(r) k
                assert report.bits.mean <= 64 * communication_bound(k, rounds)

    def test_success_improves_with_k(self):
        # 1 - 1/poly(k): failure rate at k = 16 should exceed that at
        # k = 256 when using a deliberately weak confidence exponent.
        rng = random.Random(401)
        failures = {}
        for k in (16, 256):
            protocol = TreeProtocol(1 << 16, k, rounds=2, confidence_exponent=2)
            count = 0
            for seed in range(120):
                s, t = make_instance(rng, 1 << 16, k, 0.5)
                if not protocol.run(s, t, seed=seed).correct_for(s, t):
                    count += 1
            failures[k] = count
        assert failures[256] <= max(failures[16], 2)


class TestOptimalityAgainstBaselines:
    def test_tree_beats_trivial_once_universe_is_large(self):
        # Crossover: at n/k = 2^24 the k log(n/k) baseline must lose to the
        # O(k) tree protocol.
        rng = random.Random(402)
        k = 256
        n = k << 24
        s, t = make_instance(rng, n, k, 0.5)
        trivial_bits = (
            TrivialExchangeProtocol(n, k, both_outputs=False)
            .run(s, t, seed=0)
            .total_bits
        )
        tree_bits = TreeProtocol(n, k).run(s, t, seed=0).total_bits
        assert tree_bits < trivial_bits

    def test_trivial_wins_when_universe_is_tiny(self):
        # The other side of the crossover: at n ~= 4k the deterministic
        # exchange costs ~2 bits/element and beats hashing-based protocols.
        rng = random.Random(403)
        k = 256
        n = 4 * k
        s, t = make_instance(rng, n, k, 0.5)
        trivial_bits = (
            TrivialExchangeProtocol(n, k, both_outputs=False)
            .run(s, t, seed=0)
            .total_bits
        )
        tree_bits = TreeProtocol(n, k).run(s, t, seed=0).total_bits
        assert trivial_bits < tree_bits

    def test_communication_never_scales_with_universe(self):
        # The lower-bound story only makes INT_k interesting because the
        # randomized cost is universe-free; verify across 30 bits of n.
        rng = random.Random(404)
        k = 128
        costs = []
        for log_n in (14, 24, 44):
            s, t = make_instance(rng, 1 << log_n, k, 0.5)
            costs.append(
                TreeProtocol(1 << log_n, k).run(s, t, seed=0).total_bits
            )
        assert max(costs) / min(costs) < 1.5


class TestMultipartyBounds:
    def test_total_mk_scaling(self):
        # Corollary 4.1 at r = log* k: total O(mk).
        rng = random.Random(405)
        from repro.multiparty.coordinator import CoordinatorIntersection

        k = 64
        per_mk = []
        for m in (3, 6, 12):
            common = set(rng.sample(range(1 << 20), 8))
            sets = [
                frozenset(common | set(rng.sample(range(1 << 20), k - 8)))
                for _ in range(m)
            ]
            total = CoordinatorIntersection(1 << 20, k).run(sets, seed=0).total_bits
            per_mk.append(total / (m * k))
        assert max(per_mk) < 150
        assert max(per_mk) / min(per_mk) < 3.0
