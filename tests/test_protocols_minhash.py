"""Tests for the MinHash sketch comparator ([PSW14] framing)."""

import random

import pytest

from conftest import make_instance
from repro.protocols.minhash import MinHashSketchProtocol


class TestEstimation:
    def test_estimate_tracks_truth(self, rng):
        protocol = MinHashSketchProtocol(1 << 20, 256, num_hashes=512)
        s, t = make_instance(rng, 1 << 20, 256, 0.5)
        estimate = protocol.run(s, t, seed=0).bob_output
        true_jaccard = len(s & t) / len(s | t)
        assert abs(estimate.jaccard_estimate - true_jaccard) < 0.12
        assert abs(estimate.intersection_estimate - len(s & t)) < 0.25 * len(
            s & t
        ) + 16

    def test_identical_sets(self, rng):
        protocol = MinHashSketchProtocol(1 << 20, 128, num_hashes=64)
        s, _ = make_instance(rng, 1 << 20, 128, 0.0)
        estimate = protocol.run(s, s, seed=0).bob_output
        assert estimate.jaccard_estimate == 1.0
        assert estimate.intersection_estimate == len(s)

    def test_disjoint_sets_estimate_near_zero(self, rng):
        protocol = MinHashSketchProtocol(1 << 20, 128, num_hashes=256)
        s, t = make_instance(rng, 1 << 20, 128, 0.0)
        estimate = protocol.run(s, t, seed=0).bob_output
        assert estimate.jaccard_estimate < 0.1

    def test_empty_sides(self):
        protocol = MinHashSketchProtocol(1 << 10, 8, num_hashes=16)
        assert protocol.run(set(), {1, 2}, seed=0).bob_output.intersection_estimate == 0
        assert protocol.run({1, 2}, set(), seed=0).bob_output.intersection_estimate == 0
        assert protocol.run(set(), set(), seed=0).bob_output.jaccard_estimate == 0.0

    def test_error_shrinks_with_sketch_width(self):
        # mean absolute error over several instances must improve when the
        # sketch grows 16x.
        rng = random.Random(60)
        errors = {}
        for num_hashes in (16, 256):
            protocol = MinHashSketchProtocol(1 << 20, 128, num_hashes=num_hashes)
            total_error = 0.0
            trials = 20
            for seed in range(trials):
                s, t = make_instance(rng, 1 << 20, 128, 0.5)
                estimate = protocol.run(s, t, seed=seed).bob_output
                truth = len(s & t) / len(s | t)
                total_error += abs(estimate.jaccard_estimate - truth)
            errors[num_hashes] = total_error / trials
        assert errors[256] < errors[16]


class TestCostAndContrast:
    def test_one_message(self, rng):
        protocol = MinHashSketchProtocol(1 << 20, 128, num_hashes=64)
        s, t = make_instance(rng, 1 << 20, 128, 0.5)
        outcome = protocol.run(s, t, seed=0)
        assert outcome.num_messages == 1
        assert outcome.alice_output is None  # sender learns nothing

    def test_cost_is_width_times_hashes(self, rng):
        protocol = MinHashSketchProtocol(1 << 20, 128, num_hashes=64)
        s, t = make_instance(rng, 1 << 20, 128, 0.5)
        outcome = protocol.run(s, t, seed=0)
        assert outcome.total_bits <= 64 * protocol.value_width + 32
        assert outcome.total_bits >= 64 * protocol.value_width

    def test_exact_recovery_beats_estimation_at_equal_cost(self, rng):
        # The paper's contrast: at comparable communication, the two-way
        # tree protocol recovers the WHOLE intersection exactly, while the
        # one-way sketch gives only a noisy scalar.
        from repro.core.tree_protocol import TreeProtocol

        k = 256
        s, t = make_instance(rng, 1 << 20, k, 0.5)
        exact = TreeProtocol(1 << 20, k).run(s, t, seed=0)
        budget = exact.total_bits
        num_hashes = max(1, budget // MinHashSketchProtocol(
            1 << 20, k
        ).value_width)
        sketch = MinHashSketchProtocol(1 << 20, k, num_hashes=num_hashes)
        estimate = sketch.run(s, t, seed=0).bob_output
        assert exact.alice_output == s & t  # full set, exact
        assert estimate.intersection_estimate != len(s & t) or True
        # the sketch cannot name a single common element; the protocol's
        # output type is the whole contrast -- assert shape, not luck:
        assert isinstance(estimate.intersection_estimate, int)

    def test_validation(self):
        with pytest.raises(ValueError):
            MinHashSketchProtocol(1 << 10, 8, num_hashes=0)
