"""Tests for the protocol base layer (validation, outcomes, subcontexts)."""

import pytest

from repro.comm.engine import PartyContext
from repro.comm.transcript import Transcript
from repro.protocols.base import (
    IntersectionOutcome,
    SetIntersectionProtocol,
    subcontext,
    validate_set_pair,
)
from repro.util.bits import BitString
from repro.util.rng import PrivateRandomness, SharedRandomness


class TestValidation:
    def test_accepts_valid_pair(self):
        s, t = validate_set_pair([1, 2], [2, 3], universe_size=10, max_set_size=4)
        assert s == frozenset({1, 2})
        assert t == frozenset({2, 3})

    def test_duplicates_collapse_before_size_check(self):
        s, _ = validate_set_pair([1, 1, 1], [], universe_size=10, max_set_size=1)
        assert s == frozenset({1})

    def test_rejects_oversized(self):
        with pytest.raises(ValueError, match="bound is k"):
            validate_set_pair([1, 2, 3], [], universe_size=10, max_set_size=2)

    def test_rejects_out_of_universe(self):
        with pytest.raises(ValueError, match="outside universe"):
            validate_set_pair([10], [], universe_size=10, max_set_size=2)
        with pytest.raises(ValueError, match="outside universe"):
            validate_set_pair([], [-1], universe_size=10, max_set_size=2)

    def test_rejects_non_int(self):
        with pytest.raises(ValueError):
            validate_set_pair(["x"], [], universe_size=10, max_set_size=2)

    def test_rejects_float_in_frozenset_fast_path(self):
        # 2.0 == 2 but is not an int; the min/max fast path must still
        # funnel it to the precise per-element error.
        with pytest.raises(ValueError, match="outside universe"):
            validate_set_pair(frozenset({2.0}), [], universe_size=10, max_set_size=2)

    def test_rejects_mixed_types_in_frozenset(self):
        with pytest.raises(ValueError):
            validate_set_pair(
                frozenset({1, "x"}), [], universe_size=10, max_set_size=2
            )

    def test_bools_accepted_as_ints(self):
        # bool is an int subtype; both code paths must agree on that.
        s, _ = validate_set_pair(frozenset({True, 3}), [], 10, 4)
        assert s == frozenset({1, 3})

    def test_frozensets_pass_through_without_copy(self):
        # The per-trial fast path: already-frozen inputs of k=4096 elements
        # are validated via min/max only and returned *by reference* -- no
        # re-freeze, no per-element isinstance sweep allocating anything.
        k = 4096
        alice = frozenset(range(0, 2 * k, 2))
        bob = frozenset(range(1, 2 * k, 2))
        s, t = validate_set_pair(alice, bob, universe_size=2 * k, max_set_size=k)
        assert s is alice
        assert t is bob

    def test_frozenset_fast_path_cost_is_linear(self):
        # Guard the O(k) claim: validating 8x the elements must cost less
        # than ~20x the time (quadratic re-freezing or per-element python
        # loops would blow well past that; generous bound for timer noise).
        import timeit

        k = 4096
        small = frozenset(range(512))
        large = frozenset(range(k))

        def run(sets):
            validate_set_pair(sets, sets, universe_size=k, max_set_size=k)

        t_small = min(timeit.repeat(lambda: run(small), number=50, repeat=5))
        t_large = min(timeit.repeat(lambda: run(large), number=50, repeat=5))
        assert t_large < 20 * max(t_small, 1e-7)


class TestOutcome:
    def make(self, alice, bob):
        return IntersectionOutcome(
            alice_output=alice,
            bob_output=bob,
            transcript=Transcript(),
            protocol_name="test",
        )

    def test_agreed(self):
        assert self.make(frozenset({1}), frozenset({1})).agreed
        assert not self.make(frozenset({1}), frozenset({2})).agreed

    def test_correct_for(self):
        outcome = self.make(frozenset({2}), frozenset({2}))
        assert outcome.correct_for({1, 2}, {2, 3})
        assert not outcome.correct_for({1, 2}, {1, 2})

    def test_bits_and_messages_proxy_transcript(self):
        outcome = self.make(frozenset(), frozenset())
        outcome.transcript.record_send("alice", BitString(0, 5))
        assert outcome.total_bits == 5
        assert outcome.num_messages == 1


class TestBaseClassPlumbing:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SetIntersectionProtocol(0, 5)
        with pytest.raises(ValueError):
            SetIntersectionProtocol(10, 0)

    def test_abstract_coroutines(self):
        protocol = SetIntersectionProtocol(10, 5)
        with pytest.raises(NotImplementedError):
            protocol.alice(None)
        with pytest.raises(NotImplementedError):
            protocol.bob(None)

    def test_repr(self):
        assert "n=10" in repr(SetIntersectionProtocol(10, 5))

    def test_run_composes_onto_existing_transcript(self):
        from repro.protocols.trivial import TrivialExchangeProtocol

        existing = Transcript()
        existing.record_send("alice", BitString(0, 100))
        protocol = TrivialExchangeProtocol(1 << 10, 4)
        outcome = protocol.run({1, 2}, {2, 3}, seed=0, transcript=existing)
        assert outcome.transcript is existing
        assert outcome.total_bits > 100

    def test_seed_derives_distinct_private_seeds(self):
        # alice and bob must not share private coins derived from the same
        # master seed.
        captured = {}

        class Probe(SetIntersectionProtocol):
            name = "probe"

            def alice(self, ctx):
                captured["alice"] = ctx.private.stream("x").bits(32)
                return frozenset()
                yield  # pragma: no cover

            def bob(self, ctx):
                captured["bob"] = ctx.private.stream("x").bits(32)
                return frozenset()
                yield  # pragma: no cover

        Probe(10, 2).run({1}, {1}, seed=5)
        assert captured["alice"] != captured["bob"]


class TestSubcontext:
    def test_namespaces_shared_randomness(self):
        base = PartyContext(
            role="alice",
            input={1},
            shared=SharedRandomness(3),
            private=PrivateRandomness(4),
        )
        derived = subcontext(base, "attempt7", {2})
        assert derived.input == {2}
        assert derived.role == "alice"
        assert derived.private is base.private
        assert derived.shared.stream("x").bits(32) == SharedRandomness(3).stream(
            "attempt7/x"
        ).bits(32)

    def test_nested_subcontexts(self):
        base = PartyContext(
            role="bob",
            input=None,
            shared=SharedRandomness(3),
            private=PrivateRandomness(4),
        )
        nested = subcontext(subcontext(base, "a", None), "b", None)
        assert nested.shared.stream("c").bits(16) == SharedRandomness(3).stream(
            "a/b/c"
        ).bits(16)
