"""Tests for Fact 2.2 collision-free hashing."""

import random

from repro.hashing.families import (
    CollisionFreeSpec,
    collision_free_range,
    sample_collision_free_hash,
)
from repro.util.rng import SharedRandomness


class TestRangeRule:
    def test_range_grows_with_exponent(self):
        assert collision_free_range(10, 0) == 2 * 10**2
        assert collision_free_range(10, 1) == 2 * 10**3
        assert collision_free_range(10, 3) == 2 * 10**5

    def test_small_sets_clamped(self):
        # s < 2 still gets a usable range (base clamps to 2).
        assert collision_free_range(0, 2) == 2 * 2**4
        assert collision_free_range(1, 2) == 2 * 2**4

    def test_spec_failure_probability(self):
        spec = CollisionFreeSpec(
            set_size=10, exponent=1, range_size=collision_free_range(10, 1)
        )
        # union bound: C(10,2) * 2 / 2000 = 0.045 <= 1/10
        assert spec.failure_probability <= 1 / 10
        assert spec.failure_probability > 0

    def test_spec_trivial_set(self):
        spec = CollisionFreeSpec(set_size=1, exponent=3, range_size=100)
        assert spec.failure_probability == 0.0

    def test_output_bits(self):
        spec = CollisionFreeSpec(set_size=4, exponent=0, range_size=32)
        assert spec.output_bits == 5


class TestSampledFunctions:
    def test_collision_free_rate_meets_fact_2_2(self):
        # Fact 2.2 with i = 1, |S| = 16: failure <= 1/16 per draw.
        rng = random.Random(0)
        elements = rng.sample(range(1 << 20), 16)
        shared = SharedRandomness(3)
        failures = 0
        trials = 400
        for trial in range(trials):
            hash_fn = sample_collision_free_hash(
                1 << 20, 16, 1, shared.stream(f"t{trial}")
            )
            if not hash_fn.is_collision_free_on(elements):
                failures += 1
        assert failures / trials <= 2 / 16  # 2x slack over the bound

    def test_higher_exponent_rarely_fails(self):
        rng = random.Random(1)
        elements = rng.sample(range(1 << 20), 32)
        shared = SharedRandomness(4)
        failures = sum(
            0
            if sample_collision_free_hash(
                1 << 20, 32, 3, shared.stream(f"t{t}")
            ).is_collision_free_on(elements)
            else 1
            for t in range(200)
        )
        assert failures <= 1

    def test_range_matches_spec(self):
        hash_fn = sample_collision_free_hash(
            1000, 8, 2, SharedRandomness(5).stream("h")
        )
        assert hash_fn.range_size == collision_free_range(8, 2)

    def test_both_parties_agree(self):
        f = sample_collision_free_hash(1000, 8, 2, SharedRandomness(6).stream("z"))
        g = sample_collision_free_hash(1000, 8, 2, SharedRandomness(6).stream("z"))
        assert all(f(e) == g(e) for e in range(0, 1000, 13))
