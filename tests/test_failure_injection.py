"""Failure-injection tests: how the protocols behave on a faulty channel.

The paper's model assumes a reliable channel; these tests document the
implementation's behaviour when that assumption breaks.  The contract:

1. a corrupted message either surfaces as a decode error
   (:class:`ValueError` from the strict codecs) or degrades the output,
   never hangs or crashes the engine;
2. the *local* one-sided invariants -- each party's output is a subset of
   its own input -- survive arbitrary corruption, because they are enforced
   by local filtering, not by anything received;
3. verification-based protocols (bucket-verify, amplified) treat a
   corrupted verification exchange like a failed one: they retry and still
   converge when the fault is transient;
4. structural faults (drop / duplicate) desynchronize the channel and
   surface through the engine's usual typed errors.

The fault-model vocabulary itself (``flip_bit``, :class:`FlipEveryMessage`,
:class:`FlipOnce`) lives in :mod:`repro.faults.models` -- promoted from
this file's original ad-hoc helpers -- and is imported here like any other
library code.
"""

import pytest

from conftest import make_instance
from repro.comm.engine import run_two_party
from repro.comm.errors import ProtocolDeadlock, ProtocolViolation
from repro.core.tree_protocol import TreeProtocol
from repro.faults import inject
from repro.faults.models import (
    Drop,
    Duplicate,
    FlipEveryMessage,
    FlipOnce,
    flip_bit,
)
from repro.faults.plan import FaultPlan
from repro.protocols.basic_intersection import BasicIntersectionProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.util.bits import BitString


def run_with_faults(protocol, s, t, fault, seed=0):
    return run_two_party(
        protocol.alice,
        protocol.bob,
        alice_input=s,
        bob_input=t,
        shared_seed=seed,
        fault_injector=fault,
    )


class TestLocalInvariantsSurvive:
    def test_one_round_outputs_stay_subsets(self, rng):
        protocol = OneRoundHashingProtocol(1 << 16, 64)
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        for seed in range(10):
            fault = FlipEveryMessage("alice", seed)
            try:
                outcome = run_with_faults(protocol, s, t, fault, seed)
            except ValueError:
                continue  # strict decode caught the corruption: acceptable
            assert fault.faults_injected > 0
            # Bob filtered against corrupted hashes, but only ever kept his
            # own elements.
            assert outcome.bob_output <= t

    def test_basic_intersection_outputs_stay_subsets(self, rng):
        protocol = BasicIntersectionProtocol(1 << 16, 64)
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        survived = decode_errors = 0
        for seed in range(20):
            fault = FlipEveryMessage("bob", seed)
            try:
                outcome = run_with_faults(protocol, s, t, fault, seed)
            except ValueError:
                decode_errors += 1
                continue
            survived += 1
            assert outcome.alice_output <= s
        assert survived + decode_errors == 20

    def test_tree_protocol_never_hangs(self, rng):
        protocol = TreeProtocol(1 << 16, 64, rounds=2)
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        for seed in range(10):
            fault = FlipEveryMessage("alice", seed)
            try:
                outcome = run_with_faults(protocol, s, t, fault, seed)
            except ValueError:
                continue
            assert outcome.alice_output <= s
            assert outcome.bob_output <= t


class TestVerificationCatchesTransients:
    def test_bucket_verify_retries_through_one_fault(self, rng):
        # A single corrupted message makes some verification fail; the
        # retry loop must converge to the exact answer anyway.
        from repro.protocols.bucket_verify import BucketVerifyProtocol

        protocol = BucketVerifyProtocol(1 << 16, 64)
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        exact = failures = 0
        for seed in range(10):
            try:
                outcome = run_with_faults(protocol, s, t, FlipOnce(), seed)
            except ValueError:
                failures += 1
                continue
            if outcome.alice_output == s & t and outcome.bob_output == s & t:
                exact += 1
        # most transient faults are absorbed (corrupted hash lists make a
        # bucket's verification fail -> retry with fresh randomness)
        assert exact >= 5

    def test_corrupted_equality_verdict_is_detected_or_benign(self):
        from repro.protocols.equality import EqualityProtocol

        protocol = EqualityProtocol(width=32)
        # flip the verdict bit (bob's only message)
        fault = FlipEveryMessage("bob")
        outcome = run_two_party(
            protocol.alice,
            protocol.bob,
            alice_input="same",
            bob_input="same",
            shared_seed=0,
            fault_injector=fault,
        )
        # alice sees the flipped verdict: the parties now DISAGREE, which a
        # composed protocol would observe as a failed check and retry.
        assert outcome.alice_output != outcome.bob_output


class TestStructuralFaultsOnTheEngine:
    """Drops and duplications desynchronize the two-party channel; the
    engine's existing typed errors are the detection mechanism."""

    def test_dropped_message_deadlocks(self, rng):
        protocol = BasicIntersectionProtocol(1 << 16, 32)
        s, t = make_instance(rng, 1 << 16, 32, 0.5)
        plan = FaultPlan(Drop(1.0), seed=0)
        with pytest.raises(ProtocolDeadlock):
            run_with_faults(protocol, s, t, plan.inject_two_party)
        assert plan.counts.get("drop", 0) >= 1

    def test_duplicated_message_is_a_violation(self, rng):
        protocol = BasicIntersectionProtocol(1 << 16, 32)
        s, t = make_instance(rng, 1 << 16, 32, 0.5)
        plan = FaultPlan(Duplicate(1.0), seed=0)
        # The surplus copy either desynchronizes a later Recv (decode
        # error / violation mid-run) or sits undelivered at the end
        # (violation); it must never pass silently.
        with pytest.raises((ProtocolViolation, ValueError)):
            run_with_faults(protocol, s, t, plan.inject_two_party)

    def test_global_plan_reaches_the_engine(self, rng):
        protocol = BasicIntersectionProtocol(1 << 16, 32)
        s, t = make_instance(rng, 1 << 16, 32, 0.5)
        with inject(Drop(1.0), seed=0) as plan:
            with pytest.raises(ProtocolDeadlock):
                protocol.run(s, t, seed=0)
        assert plan.counts.get("drop", 0) >= 1
        # reliable again outside the context
        outcome = protocol.run(s, t, seed=0)
        assert outcome.alice_output <= s


class TestFaultModelMechanics:
    def test_flip_bit_roundtrip(self):
        payload = BitString.from_str("10110")
        flipped = flip_bit(payload, 2)
        assert str(flipped) == "10010"
        assert flip_bit(flipped, 2) == payload

    def test_transcript_records_original_payload(self, rng):
        # The sender paid for what it sent; accounting must not change.
        protocol = OneRoundHashingProtocol(1 << 16, 32)
        s, t = make_instance(rng, 1 << 16, 32, 0.5)
        clean = protocol.run(s, t, seed=0)
        fault = FlipEveryMessage("alice", seed=1)
        try:
            faulty = run_with_faults(protocol, s, t, fault, 0)
            assert faulty.total_bits == clean.total_bits
        except ValueError:
            pytest.skip("decode error before completion (acceptable)")
