"""Tests for trial aggregation."""

import pytest

from repro.comm.stats import Summary, TrialAggregator, run_trials, summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_p95_nearest_rank(self):
        values = list(range(1, 101))
        assert summarize(values).p95 == 95

    def test_single_value(self):
        summary = summarize([7])
        assert summary.mean == summary.p50 == summary.p95 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_is_compact(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestAggregator:
    def test_success_rate(self):
        aggregator = TrialAggregator()
        for i in range(10):
            aggregator.add(bits=100 + i, messages=4, correct=(i != 3))
        report = aggregator.report()
        assert report.trials == 10
        assert report.failures == 1
        assert report.success_rate == pytest.approx(0.9)

    def test_bits_summary(self):
        aggregator = TrialAggregator()
        aggregator.add(bits=10, messages=2, correct=True)
        aggregator.add(bits=30, messages=4, correct=True)
        report = aggregator.report()
        assert report.bits.mean == 20.0
        assert report.messages.maximum == 4.0

    def test_str(self):
        aggregator = TrialAggregator()
        aggregator.add(bits=1, messages=1, correct=True)
        assert "success=1.0000" in str(aggregator.report())


class TestRunTrials:
    def test_drives_seeds(self):
        seen = []

        def run_once(seed):
            seen.append(seed)
            return (seed * 10, 2, True)

        report = run_trials(run_once, trials=5, first_seed=100)
        assert seen == [100, 101, 102, 103, 104]
        assert report.trials == 5
        assert report.bits.minimum == 1000.0
