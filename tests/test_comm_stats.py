"""Tests for trial aggregation."""

import pytest

from repro.comm.stats import Summary, TrialAggregator, run_trials, summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_p95_nearest_rank(self):
        values = list(range(1, 101))
        assert summarize(values).p95 == 95

    def test_single_value(self):
        summary = summarize([7])
        assert summary.mean == summary.p50 == summary.p95 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_is_compact(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestAggregator:
    def test_success_rate(self):
        aggregator = TrialAggregator()
        for i in range(10):
            aggregator.add(bits=100 + i, messages=4, correct=(i != 3))
        report = aggregator.report()
        assert report.trials == 10
        assert report.failures == 1
        assert report.success_rate == pytest.approx(0.9)

    def test_bits_summary(self):
        aggregator = TrialAggregator()
        aggregator.add(bits=10, messages=2, correct=True)
        aggregator.add(bits=30, messages=4, correct=True)
        report = aggregator.report()
        assert report.bits.mean == 20.0
        assert report.messages.maximum == 4.0

    def test_str(self):
        aggregator = TrialAggregator()
        aggregator.add(bits=1, messages=1, correct=True)
        assert "success=1.0000" in str(aggregator.report())


class TestRunTrials:
    def test_drives_seeds(self):
        seen = []

        def run_once(seed):
            seen.append(seed)
            return (seed * 10, 2, True)

        report = run_trials(run_once, trials=5, first_seed=100)
        assert seen == [100, 101, 102, 103, 104]
        assert report.trials == 5
        assert report.bits.minimum == 1000.0


class TestNumpyArrayInputs:
    # Regression: ``if not values`` raises "truth value of an array is
    # ambiguous" for numpy arrays of length > 1, and treats a length-1
    # zero array as empty.  The emptiness checks must be len-based so
    # kernel-backend callers can hand measurement arrays straight in.

    def test_summarize_accepts_numpy_arrays(self):
        np = pytest.importorskip("numpy")
        values = np.array([10.0, 20.0, 60.0])
        summary = summarize(values)
        assert summary.count == 3
        assert summary.mean == pytest.approx(30.0)

    def test_single_zero_element_array_is_not_empty(self):
        np = pytest.importorskip("numpy")
        summary = summarize(np.array([0.0]))
        assert summary.count == 1
        assert summary.mean == 0.0

    def test_empty_numpy_array_rejected(self):
        np = pytest.importorskip("numpy")
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_plain_lists_unchanged(self):
        # The scalar-backend leg of the matrix has no numpy: the same
        # len-based checks must keep serving plain sequences.
        assert summarize([0.0]).count == 1
        with pytest.raises(ValueError):
            summarize([])


class TestZeroTrialReport:
    def test_success_rate_is_nan_not_vacuous_success(self):
        import math

        from repro.comm.stats import TrialReport

        empty = Summary(
            count=0, mean=0.0, minimum=0.0, maximum=0.0, p50=0.0, p95=0.0
        )
        report = TrialReport(trials=0, failures=0, bits=empty, messages=empty)
        assert math.isnan(report.success_rate)

    def test_str_says_no_trials(self):
        from repro.comm.stats import TrialReport

        empty = Summary(
            count=0, mean=0.0, minimum=0.0, maximum=0.0, p50=0.0, p95=0.0
        )
        report = TrialReport(trials=0, failures=0, bits=empty, messages=empty)
        assert "n/a (0 trials)" in str(report)

    def test_nonzero_trials_unaffected(self):
        aggregator = TrialAggregator()
        aggregator.add(bits=1, messages=1, correct=True)
        assert aggregator.report().success_rate == 1.0
