"""Tests for the tree protocol's per-stage instrumentation."""

from conftest import make_instance
from repro.core.tree_protocol import StageStats, TreeProtocol


class TestStageStats:
    def run_with_stats(self, rng, k=256, rounds=3, overlap=0.5, seed=0):
        sink = []
        protocol = TreeProtocol(
            1 << 20, k, rounds=rounds, stage_stats_sink=sink
        )
        s, t = make_instance(rng, 1 << 20, k, overlap)
        outcome = protocol.run(s, t, seed=seed)
        return sink, outcome

    def test_one_entry_per_stage(self, rng):
        sink, _ = self.run_with_stats(rng, rounds=3)
        assert [entry.stage for entry in sink] == [0, 1, 2]
        assert all(isinstance(entry, StageStats) for entry in sink)

    def test_stats_sum_to_total(self, rng):
        sink, outcome = self.run_with_stats(rng)
        accounted = sum(
            entry.equality_bits + entry.rerun_bits for entry in sink
        )
        assert accounted == outcome.total_bits

    def test_stage_zero_dominates(self, rng):
        # The analysis: stage 0 carries the k * log^(r) k equality sweep
        # and almost all Basic-Intersection re-runs.
        sink, outcome = self.run_with_stats(rng, overlap=0.5)
        stage0 = sink[0].equality_bits + sink[0].rerun_bits
        assert stage0 > outcome.total_bits / 2

    def test_failed_leaves_decrease_up_the_tree(self, rng):
        sink, _ = self.run_with_stats(rng, overlap=0.5)
        assert sink[0].failed_leaves >= sink[1].failed_leaves >= sink[2].failed_leaves

    def test_node_counts_match_tree_shape(self, rng):
        sink, _ = self.run_with_stats(rng, k=256, rounds=3)
        protocol = TreeProtocol(1 << 20, 256, rounds=3)
        for entry in sink:
            assert entry.num_nodes == len(protocol.tree.levels[entry.stage])

    def test_identical_sets_have_no_reruns_after_stage_zero(self, rng):
        sink, _ = self.run_with_stats(rng, overlap=1.0)
        # identical buckets pass every equality test: no failed leaves at all
        assert all(entry.failed_leaves == 0 for entry in sink)
        assert all(entry.rerun_bits == 0 for entry in sink)

    def test_no_sink_no_stats(self, rng):
        protocol = TreeProtocol(1 << 20, 64, rounds=2)
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        outcome = protocol.run(s, t, seed=0)
        assert outcome.correct_for(s, t)
        assert protocol.stage_stats_sink is None

    def test_sink_accumulates_across_runs(self, rng):
        sink = []
        protocol = TreeProtocol(1 << 20, 64, rounds=2, stage_stats_sink=sink)
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        protocol.run(s, t, seed=0)
        protocol.run(s, t, seed=1)
        assert len(sink) == 4  # 2 stages x 2 runs
