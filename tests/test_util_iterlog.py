"""Tests for the iterated-logarithm arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.iterlog import ceil_log2, ilog2, iterated_log, log_star, tower


class TestIlog2:
    def test_powers_of_two_are_exact(self):
        for exponent in range(0, 200, 7):
            assert ilog2(1 << exponent) == exponent

    def test_one_below_powers(self):
        for exponent in range(2, 60, 5):
            assert ilog2((1 << exponent) - 1) == exponent - 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2(0)
        with pytest.raises(ValueError):
            ilog2(-5)

    @given(st.integers(min_value=1, max_value=10**30))
    def test_matches_bit_length(self, value):
        assert ilog2(value) == value.bit_length() - 1

    def test_exact_beyond_float_precision(self):
        # 2^53 + 1 rounds to 2^53 as a float; ilog2 must stay exact.
        value = (1 << 53) + 1
        assert ilog2(value) == 53


class TestCeilLog2:
    def test_addressing_widths(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(4) == 2
        assert ceil_log2(5) == 3

    @given(st.integers(min_value=1, max_value=10**20))
    def test_is_minimal_width(self, value):
        width = ceil_log2(value)
        assert (1 << width) >= value
        if width > 0:
            assert (1 << (width - 1)) < value

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestIteratedLog:
    def test_zeroth_iterate_is_identity(self):
        for k in (0, 1, 5, 1000):
            assert iterated_log(k, 0) == k

    def test_first_iterate_is_log2(self):
        assert iterated_log(1024, 1) == pytest.approx(10.0)
        assert iterated_log(65536, 1) == pytest.approx(16.0)

    def test_second_iterate(self):
        assert iterated_log(65536, 2) == pytest.approx(4.0)

    def test_clamps_at_one(self):
        assert iterated_log(16, 10) == 1.0
        assert iterated_log(2, 1) == 1.0
        assert iterated_log(1, 5) == 1.0

    def test_monotone_decreasing_in_r(self):
        k = 10**6
        values = [iterated_log(k, r) for r in range(8)]
        assert values == sorted(values, reverse=True)

    def test_monotone_nondecreasing_in_k(self):
        for r in range(4):
            values = [iterated_log(k, r) for k in (4, 16, 256, 65536)]
            assert values == sorted(values)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            iterated_log(-1, 0)
        with pytest.raises(ValueError):
            iterated_log(5, -1)

    @given(st.integers(min_value=2, max_value=10**9), st.integers(1, 6))
    def test_iterate_recurrence(self, k, r):
        inner = iterated_log(k, r - 1)
        outer = iterated_log(k, r)
        if inner > 2.0:
            assert outer == pytest.approx(max(math.log2(inner), 1.0))
        else:
            assert outer == 1.0


class TestLogStar:
    def test_tower_boundaries(self):
        assert [log_star(k) for k in (0, 1, 2, 4, 16, 65536)] == [0, 0, 1, 2, 3, 4]

    def test_just_past_tower_boundaries(self):
        assert log_star(3) == 2
        assert log_star(5) == 3
        assert log_star(17) == 4
        assert log_star(65537) == 5

    def test_practical_range_is_tiny(self):
        # For every practically simulable k, log* k <= 5.
        assert log_star(10**9) <= 5

    @given(st.integers(min_value=1, max_value=10**9))
    def test_definition(self, k):
        r = log_star(k)
        assert iterated_log(k, r) <= 1.0 + 1e-9
        if r > 0:
            assert iterated_log(k, r - 1) > 1.0


class TestTower:
    def test_values(self):
        assert [tower(h) for h in range(5)] == [1, 2, 4, 16, 65536]

    def test_inverse_of_log_star(self):
        for height in range(1, 5):
            assert log_star(tower(height)) == height
            assert log_star(tower(height) + 1) == height + 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            tower(-1)
