"""Tests for the JSON reporting layer."""

import json
import random

import pytest

from conftest import make_instance
from repro.analysis.empirical import measure_protocol
from repro.core.api import compute_intersection
from repro.core.tree_protocol import TreeProtocol
from repro.multiparty.coordinator import CoordinatorIntersection
from repro.reporting import (
    intersection_result_to_dict,
    multiparty_result_to_dict,
    to_json,
    trial_report_to_dict,
)
from repro.workloads import WorkloadSpec


class TestIntersectionResultSchema:
    def test_keys_pinned(self, rng):
        s, t = make_instance(rng, 1 << 16, 32, 0.5)
        result = compute_intersection(s, t, universe_size=1 << 16, max_set_size=32)
        payload = intersection_result_to_dict(result)
        assert set(payload) == {
            "schema",
            "intersection",
            "intersection_size",
            "bits",
            "messages",
            "protocol",
            "rounds_parameter",
            "parties_agree",
        }
        assert payload["schema"] == "repro.intersection_result/1"
        assert payload["intersection"] == sorted(s & t)

    def test_json_roundtrip(self, rng):
        s, t = make_instance(rng, 1 << 16, 32, 0.5)
        result = compute_intersection(s, t, universe_size=1 << 16, max_set_size=32)
        decoded = json.loads(to_json(result))
        assert decoded["intersection_size"] == len(s & t)

    def test_deterministic_serialization(self, rng):
        s, t = make_instance(rng, 1 << 16, 32, 0.5)
        result = compute_intersection(
            s, t, universe_size=1 << 16, max_set_size=32, seed=3
        )
        assert to_json(result) == to_json(result)


class TestTrialReportSchema:
    def test_summary_structure(self):
        report = measure_protocol(
            TreeProtocol(1 << 16, 32), WorkloadSpec(1 << 16, 32, 0.5), trials=4
        )
        payload = trial_report_to_dict(report)
        assert payload["trials"] == 4
        assert set(payload["bits"]) == {"count", "mean", "min", "max", "p50", "p95"}
        json.loads(to_json(report))  # serializable


class TestMultipartySchema:
    def test_per_player_accounting(self):
        rng = random.Random(0)
        common = set(rng.sample(range(1 << 16), 8))
        sets = [
            frozenset(common | set(rng.sample(range(1 << 16), 24)))
            for _ in range(4)
        ]
        result = CoordinatorIntersection(1 << 16, 32).run(sets, seed=0)
        payload = multiparty_result_to_dict(result)
        assert payload["schema"] == "repro.multiparty_result/1"
        assert len(payload["players"]) == 4
        total = sum(entry["sent"] for entry in payload["players"].values())
        assert total == payload["total_bits"]
        json.loads(to_json(result))


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_json(object())
