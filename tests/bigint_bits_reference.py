"""The retained pure-big-int reference bitstream implementation (test oracle).

This is the original ``repro.util.bits`` implementation, frozen verbatim:
every bit string is one Python big int holding the bits MSB-first, and all
writes re-shift the whole accumulated prefix.  It is *quadratic* in message
length and exists only as the differential-testing oracle -- the shipped
byte-backed engine in :mod:`repro.util.bits` must produce bit-for-bit
identical encodings for every codec, which ``test_bits_differential.py``
asserts over randomized inputs.

Do not import this from library code; it lives under ``tests/`` on purpose.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

__all__ = [
    "BitString",
    "BitWriter",
    "BitReader",
    "encode_uint",
    "decode_uint",
    "encode_elias_gamma",
    "decode_elias_gamma",
    "encode_fixed_list",
    "decode_fixed_list",
    "encode_delta_sorted_set",
    "decode_delta_sorted_set",
]


class BitString:
    """An immutable sequence of bits.

    Internally a pair ``(value, length)`` where ``value`` is a nonnegative
    integer holding the bits most-significant-first.  Supports concatenation
    (``+``), slicing, equality, hashing, and iteration over individual bits.

    >>> b = BitString.from_bits([1, 0, 1, 1])
    >>> len(b), str(b)
    (4, '1011')
    >>> (b + BitString.from_bits([0]))[4]
    0
    """

    __slots__ = ("_value", "_length")

    def __init__(self, value: int, length: int):
        if length < 0:
            raise ValueError(f"BitString length must be >= 0, got {length}")
        if value < 0:
            raise ValueError(f"BitString value must be >= 0, got {value}")
        if value.bit_length() > length:
            raise ValueError(
                f"value {value} does not fit in {length} bits "
                f"(needs {value.bit_length()})"
            )
        self._value = value
        self._length = length

    @classmethod
    def empty(cls) -> "BitString":
        """The zero-length bit string."""
        return cls(0, 0)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitString":
        """Build from an iterable of 0/1 integers, first bit first."""
        value = 0
        length = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit!r}")
            value = (value << 1) | bit
            length += 1
        return cls(value, length)

    @classmethod
    def from_str(cls, text: str) -> "BitString":
        """Build from a string of '0'/'1' characters."""
        return cls.from_bits(int(ch) for ch in text)

    @property
    def value(self) -> int:
        """The bits interpreted as a big-endian unsigned integer."""
        return self._value

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield (self._value >> (self._length - 1 - i)) & 1

    def __getitem__(self, index):
        if isinstance(index, slice):
            indices = range(*index.indices(self._length))
            return BitString.from_bits(self._raw_bit(i) for i in indices)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"bit index {index} out of range [0, {self._length})")
        return self._raw_bit(index)

    def _raw_bit(self, index: int) -> int:
        return (self._value >> (self._length - 1 - index)) & 1

    def __add__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        return BitString(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BitString)
            and self._value == other._value
            and self._length == other._length
        )

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __str__(self) -> str:
        return format(self._value, f"0{self._length}b") if self._length else ""

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"BitString('{self}')"
        return f"BitString(<{self._length} bits>)"


class BitWriter:
    """Accumulates bits into a :class:`BitString`.

    >>> w = BitWriter()
    >>> w.write_uint(5, width=4)
    >>> str(w.finish())
    '0101'
    """

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._value = (self._value << 1) | bit
        self._length += 1

    def write_uint(self, value: int, width: int) -> None:
        """Write ``value`` as exactly ``width`` big-endian bits."""
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if value < 0 or value.bit_length() > width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width

    def write_bits(self, bits: BitString) -> None:
        """Append an entire :class:`BitString`."""
        self._value = (self._value << len(bits)) | bits.value
        self._length += len(bits)

    def write_gamma(self, value: int) -> None:
        """Write a nonnegative integer with the Elias gamma code.

        Encodes ``value + 1`` (gamma natively codes positive integers) as
        ``floor(log2(v))`` zeros followed by the binary expansion of ``v``:
        ``2 * floor(log2(value + 1)) + 1`` bits total, self-delimiting.
        """
        if value < 0:
            raise ValueError(f"gamma code requires value >= 0, got {value}")
        shifted = value + 1
        width = shifted.bit_length()
        # Fast path: the (width - 1) leading zeros and the payload are one
        # shift-or on the backing integer instead of two write_uint calls.
        self._value = (self._value << (2 * width - 1)) | shifted
        self._length += 2 * width - 1

    def finish(self) -> BitString:
        """Return the accumulated bits as an immutable :class:`BitString`."""
        return BitString(self._value, self._length)

    def __len__(self) -> int:
        return self._length


class BitReader:
    """Sequentially consumes a :class:`BitString`.

    Raises :class:`ValueError` on attempts to read past the end; protocols
    call :meth:`expect_exhausted` after decoding a message to assert the
    message contained exactly what the codec expected.
    """

    def __init__(self, bits: BitString) -> None:
        self._bits = bits
        self._pos = 0

    def read_bit(self) -> int:
        bits = self._bits
        remaining = len(bits) - self._pos
        if remaining <= 0:
            raise ValueError("BitReader: read past end of message")
        self._pos += 1
        return (bits.value >> (remaining - 1)) & 1

    def read_uint(self, width: int) -> int:
        """Read ``width`` bits as a big-endian unsigned integer."""
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        total = len(self._bits)
        if self._pos + width > total:
            raise ValueError(
                f"BitReader: requested {width} bits with only "
                f"{total - self._pos} remaining"
            )
        # One shift-and-mask over the backing integer instead of a
        # bit-by-bit loop: reads are O(remaining) big-int work, not
        # O(width) Python iterations.
        shift = total - self._pos - width
        value = (self._bits.value >> shift) & ((1 << width) - 1)
        self._pos += width
        return value

    def read_gamma(self) -> int:
        """Read one Elias-gamma-coded nonnegative integer.

        The run of leading zeros is counted in one step from the backing
        integer (``remaining - bit_length`` of the unread suffix) instead
        of a bit-by-bit loop -- gamma headers are on every framed message,
        so this is a protocol-wide hot path.
        """
        bits = self._bits
        remaining = len(bits) - self._pos
        if remaining <= 0:
            raise ValueError("BitReader: read past end of message")
        suffix = bits.value & ((1 << remaining) - 1)
        zeros = remaining - suffix.bit_length()
        if zeros >= remaining:
            # All-zero suffix: the terminating 1 bit never arrives.
            raise ValueError("BitReader: read past end of message")
        self._pos += zeros + 1
        # The leading 1 just consumed is the top bit of the payload.
        rest = self.read_uint(zeros)
        return ((1 << zeros) | rest) - 1

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return len(self._bits) - self._pos

    def expect_exhausted(self) -> None:
        """Assert the whole message has been consumed."""
        if self.remaining:
            raise ValueError(
                f"BitReader: {self.remaining} unconsumed bits in message"
            )


def encode_uint(value: int, width: int) -> BitString:
    """Encode ``value`` as exactly ``width`` bits."""
    writer = BitWriter()
    writer.write_uint(value, width)
    return writer.finish()


def decode_uint(bits: BitString, width: int) -> int:
    """Decode a :func:`encode_uint` message; the message must be exact."""
    reader = BitReader(bits)
    value = reader.read_uint(width)
    reader.expect_exhausted()
    return value


def encode_elias_gamma(value: int) -> BitString:
    """Encode a single nonnegative integer with the Elias gamma code."""
    writer = BitWriter()
    writer.write_gamma(value)
    return writer.finish()


def decode_elias_gamma(bits: BitString) -> int:
    """Decode a single :func:`encode_elias_gamma` message."""
    reader = BitReader(bits)
    value = reader.read_gamma()
    reader.expect_exhausted()
    return value


def encode_fixed_list(values: Sequence[int], width: int) -> BitString:
    """Encode a list of integers: gamma-coded count, then fixed-width items.

    This is the codec used for lists of hash values: ``O(log m)`` bits of
    header plus ``width`` bits per element, so a list of ``m`` hashes into
    ``[t]`` costs ``m * ceil_log2(t) + O(log m)`` bits -- exactly the
    ``O(m log t)`` the paper charges for exchanging ``h(S)``.
    """
    writer = BitWriter()
    writer.write_gamma(len(values))
    for value in values:
        writer.write_uint(value, width)
    return writer.finish()


def decode_fixed_list(bits: BitString, width: int) -> List[int]:
    """Decode a :func:`encode_fixed_list` message."""
    reader = BitReader(bits)
    count = reader.read_gamma()
    values = [reader.read_uint(width) for _ in range(count)]
    reader.expect_exhausted()
    return values


def write_fixed_list(writer: BitWriter, values: Sequence[int], width: int) -> None:
    """In-place variant of :func:`encode_fixed_list` for composite messages."""
    writer.write_gamma(len(values))
    for value in values:
        writer.write_uint(value, width)


def read_fixed_list(reader: BitReader, width: int) -> List[int]:
    """In-place variant of :func:`decode_fixed_list` for composite messages."""
    count = reader.read_gamma()
    return [reader.read_uint(width) for _ in range(count)]


def encode_delta_sorted_set(elements: Iterable[int]) -> BitString:
    """Gap-encode a set of nonnegative integers.

    The elements are sorted and the consecutive gaps (first element, then
    successive differences minus one) are Elias-gamma coded.  For a k-subset
    of ``[n]`` the expected cost is ``O(k log(n/k))`` bits -- within a
    constant factor of the information-theoretic optimum ``log2 C(n, k)``.
    This is the wire format of the trivial deterministic protocol
    (``D^(1)(INT_k) = O(k log(n/k))``).
    """
    sorted_elements = sorted(elements)
    for element in sorted_elements:
        if element < 0:
            raise ValueError(f"set elements must be >= 0, got {element}")
    writer = BitWriter()
    writer.write_gamma(len(sorted_elements))
    previous = -1
    for element in sorted_elements:
        if element == previous:
            raise ValueError(f"duplicate element {element} in set encoding")
        writer.write_gamma(element - previous - 1)
        previous = element
    return writer.finish()


def decode_delta_sorted_set(bits: BitString) -> List[int]:
    """Decode a :func:`encode_delta_sorted_set` message into a sorted list."""
    reader = BitReader(bits)
    count = reader.read_gamma()
    elements: List[int] = []
    previous = -1
    for _ in range(count):
        previous = previous + 1 + reader.read_gamma()
        elements.append(previous)
    reader.expect_exhausted()
    return elements
