"""Tests for the Corollary 4.1 coordinator protocol."""

import random

import pytest

from repro.multiparty.coordinator import CoordinatorIntersection, partition_groups


def make_multiparty_instance(rng, n, k, m, common_size):
    common = set(rng.sample(range(n), common_size))
    sets = []
    for _ in range(m):
        extra = set(rng.sample(range(n), k - common_size))
        sets.append(frozenset(common | extra))
    return sets, frozenset.intersection(*map(frozenset, sets))


class TestPartitionGroups:
    def test_even_split(self):
        assert partition_groups(list("abcdef"), 2) == [
            ["a", "b"],
            ["c", "d"],
            ["e", "f"],
        ]

    def test_ragged_split(self):
        assert partition_groups(list("abcde"), 3) == [["a", "b", "c"], ["d", "e"]]

    def test_oversized_group(self):
        assert partition_groups(["a"], 10) == [["a"]]

    def test_group_size_exceeds_player_count(self):
        # One group containing everybody -- the single-level recursion case.
        players = [f"p{i}" for i in range(5)]
        assert partition_groups(players, 100) == [players]

    def test_single_player(self):
        assert partition_groups(["only"], 2) == [["only"]]

    def test_empty_player_list(self):
        assert partition_groups([], 4) == []

    def test_non_divisible_sizes_cover_everyone_once(self):
        players = [f"p{i}" for i in range(7)]
        for group_size in (2, 3, 4, 5, 6):
            groups = partition_groups(players, group_size)
            # Every player appears exactly once, order preserved.
            assert [p for group in groups for p in group] == players
            # All groups full except possibly the last.
            assert all(len(g) == group_size for g in groups[:-1])
            assert 1 <= len(groups[-1]) <= group_size

    def test_group_size_of_remainder_one(self):
        # 7 players in groups of 3 leaves a singleton tail group whose lone
        # member is its own coordinator.
        groups = partition_groups([f"p{i}" for i in range(7)], 3)
        assert groups[-1] == ["p6"]

    def test_returns_lists_not_views(self):
        players = ["a", "b", "c", "d"]
        groups = partition_groups(players, 2)
        groups[0].append("mutated")
        assert players == ["a", "b", "c", "d"]


class TestCorrectness:
    @pytest.mark.parametrize("m", [2, 3, 5, 8])
    def test_exact_for_various_player_counts(self, m):
        rng = random.Random(m)
        sets, truth = make_multiparty_instance(rng, 1 << 16, 64, m, 12)
        result = CoordinatorIntersection(1 << 16, 64).run(sets, seed=0)
        assert result.intersection == truth

    def test_single_player(self):
        result = CoordinatorIntersection(1 << 10, 8).run([{1, 2, 3}], seed=0)
        assert result.intersection == frozenset({1, 2, 3})
        assert result.total_bits == 0
        assert result.rounds == 0

    def test_globally_empty_intersection(self):
        rng = random.Random(50)
        sets, truth = make_multiparty_instance(rng, 1 << 16, 32, 4, 0)
        result = CoordinatorIntersection(1 << 16, 32).run(sets, seed=0)
        assert result.intersection == truth

    def test_identical_sets(self):
        shared_set = frozenset(range(0, 640, 10))
        result = CoordinatorIntersection(1 << 10, 64).run([shared_set] * 5, seed=0)
        assert result.intersection == shared_set

    def test_multi_level_recursion(self):
        # Force 3 levels of recursion via a tiny group size.
        rng = random.Random(51)
        sets, truth = make_multiparty_instance(rng, 1 << 16, 32, 9, 6)
        result = CoordinatorIntersection(1 << 16, 32, group_size=3).run(
            sets, seed=0
        )
        assert result.intersection == truth

    def test_many_seeds(self):
        rng = random.Random(52)
        protocol = CoordinatorIntersection(1 << 16, 32)
        for seed in range(15):
            sets, truth = make_multiparty_instance(rng, 1 << 16, 32, 5, 8)
            assert protocol.run(sets, seed=seed).intersection == truth


class TestCostProperties:
    def test_average_per_player_linear_in_k(self):
        # Corollary 4.1: average communication per player O(k log^(r) k);
        # at default r the per-(player, k) cost must sit in a constant band.
        rng = random.Random(53)
        m = 6
        per_player_per_k = []
        for k in (32, 128):
            sets, _ = make_multiparty_instance(rng, 1 << 20, k, m, k // 4)
            result = CoordinatorIntersection(1 << 20, k).run(sets, seed=0)
            per_player_per_k.append(result.outcome.average_player_bits / k)
        assert max(per_player_per_k) < 200
        assert max(per_player_per_k) / min(per_player_per_k) < 3.0

    def test_total_linear_in_m(self):
        # Total O(mk): doubling m should roughly double total bits.
        rng = random.Random(54)
        k = 32
        totals = {}
        for m in (4, 8):
            sets, _ = make_multiparty_instance(rng, 1 << 20, k, m, 8)
            totals[m] = CoordinatorIntersection(1 << 20, k).run(sets, seed=0).total_bits
        assert totals[8] < 3 * totals[4]
        assert totals[8] > 1.2 * totals[4]

    def test_rounds_do_not_grow_with_m_in_single_level(self):
        # With m <= group size there is one recursion level; rounds are the
        # two-party O(r) regardless of m (pairs run in parallel).
        rng = random.Random(55)
        k = 32
        rounds = {}
        for m in (3, 9):
            sets, _ = make_multiparty_instance(rng, 1 << 20, k, m, 8)
            rounds[m] = CoordinatorIntersection(1 << 20, k).run(sets, seed=0).rounds
        assert rounds[9] <= rounds[3] + 10

    def test_coordinator_pays_most(self):
        rng = random.Random(56)
        sets, _ = make_multiparty_instance(rng, 1 << 20, 64, 6, 16)
        result = CoordinatorIntersection(1 << 20, 64).run(sets, seed=0)
        coordinator = "p00000"
        coordinator_bits = result.outcome.bits_sent[coordinator] + (
            result.outcome.bits_received[coordinator]
        )
        assert coordinator_bits == result.outcome.max_player_bits


class TestValidation:
    def test_empty_player_list(self):
        with pytest.raises(ValueError):
            CoordinatorIntersection(1 << 10, 8).run([], seed=0)

    def test_oversized_set(self):
        with pytest.raises(ValueError):
            CoordinatorIntersection(1 << 10, 2).run([{1, 2, 3}, {1}], seed=0)

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            CoordinatorIntersection(1 << 10, 8, group_size=1)
