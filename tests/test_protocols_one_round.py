"""Tests for the one-round hashing protocol (R^(1))."""

import math
import random

import pytest

from conftest import make_instance
from repro.comm.stats import TrialAggregator
from repro.protocols.one_round import OneRoundHashingProtocol


class TestCorrectness:
    def test_exact_on_all_overlap_regimes(self, rng, overlap_fraction):
        protocol = OneRoundHashingProtocol(1 << 20, 128)
        s, t = make_instance(rng, 1 << 20, 128, overlap_fraction)
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_outputs_always_contain_intersection(self, rng):
        # One-sided structure: even with an absurdly weak hash, the output
        # must be a superset of S n T and a subset of the own set.
        protocol = OneRoundHashingProtocol(1 << 20, 64, confidence_exponent=1)
        for seed in range(20):
            s, t = make_instance(rng, 1 << 20, 64, 0.5)
            outcome = protocol.run(s, t, seed=seed)
            assert s & t <= outcome.alice_output <= s
            assert s & t <= outcome.bob_output <= t

    def test_success_rate_high(self, rng):
        protocol = OneRoundHashingProtocol(1 << 20, 64)
        aggregator = TrialAggregator()
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        for seed in range(100):
            outcome = protocol.run(s, t, seed=seed)
            aggregator.add(
                bits=outcome.total_bits,
                messages=outcome.num_messages,
                correct=outcome.correct_for(s, t),
            )
        assert aggregator.report().success_rate == 1.0  # error ~ 1/(2k)^3

    def test_empty_and_tiny(self):
        protocol = OneRoundHashingProtocol(1 << 10, 4)
        assert protocol.run(set(), set(), seed=0).alice_output == frozenset()
        assert protocol.run({1}, {1}, seed=0).alice_output == frozenset({1})


class TestCost:
    def test_exactly_two_messages(self, rng):
        protocol = OneRoundHashingProtocol(1 << 20, 64)
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        assert protocol.run(s, t, seed=0).num_messages == 2

    def test_k_log_k_scaling_independent_of_n(self):
        # R^(1) = O(k log k): the cost must not grow with the universe.
        rng = random.Random(3)
        k = 64
        small_n, huge_n = 1 << 14, 1 << 40
        s1, t1 = make_instance(rng, small_n, k, 0.5)
        s2, t2 = make_instance(rng, huge_n, k, 0.5)
        bits_small = OneRoundHashingProtocol(small_n, k).run(s1, t1, seed=0).total_bits
        bits_huge = OneRoundHashingProtocol(huge_n, k).run(s2, t2, seed=0).total_bits
        assert bits_huge == bits_small

    def test_cost_formula(self):
        # 2k values of width (C+2) * ceil_log2-ish bits plus headers.
        rng = random.Random(4)
        k, exponent = 128, 3
        s, t = make_instance(rng, 1 << 30, k, 0.0)
        protocol = OneRoundHashingProtocol(1 << 30, k, confidence_exponent=exponent)
        bits = protocol.run(s, t, seed=0).total_bits
        per_element = math.ceil(math.log2(2 * (2 * k) ** (exponent + 2)))
        assert bits <= 2 * k * per_element + 64
        assert bits >= 2 * k * (per_element - 1)

    def test_confidence_exponent_validation(self):
        with pytest.raises(ValueError):
            OneRoundHashingProtocol(100, 10, confidence_exponent=0)


class TestFailureShape:
    def test_low_confidence_fails_observably(self):
        # With exponent 1 and k = 4 the hash range is small enough that over
        # many seeds we should witness at least one false positive --
        # demonstrating the error knob is real, not decorative.
        rng = random.Random(5)
        protocol = OneRoundHashingProtocol(1 << 16, 4, confidence_exponent=1)
        wrong = 0
        for seed in range(400):
            s, t = make_instance(rng, 1 << 16, 4, 0.0)
            outcome = protocol.run(s, t, seed=seed)
            if not outcome.correct_for(s, t):
                wrong += 1
        assert wrong >= 1
        assert wrong < 100  # but still rare
