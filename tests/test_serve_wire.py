"""Tests for the serve wire protocol (frames, typed errors, FrameReader)."""

import asyncio

import pytest

from repro.serve.wire import (
    ERROR_TYPES,
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    ServeError,
    decode_frame_payload,
    encode_frame,
    error_reply,
    read_frame,
)


def _stream_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _run(coro):
    return asyncio.run(coro)


class TestFrames:
    def test_round_trip(self):
        frame = encode_frame({"op": "ping", "id": 3})
        assert decode_frame_payload(frame[4:]) == {"op": "ping", "id": 3}

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"a": 1})
        assert int.from_bytes(frame[:4], "big") == len(frame) - 4

    def test_compact_deterministic_encoding(self):
        # sorted keys + no whitespace: identical objects encode identically,
        # which the load generator's pre-encoding relies on.
        assert encode_frame({"b": 2, "a": 1}) == encode_frame({"a": 1, "b": 2})
        assert b" " not in encode_frame({"a": [1, 2], "b": {"c": 3}})

    def test_non_object_payload_rejected(self):
        with pytest.raises(FrameError):
            decode_frame_payload(b"[1,2,3]")
        with pytest.raises(FrameError):
            decode_frame_payload(b"not json")

    def test_read_frame_clean_eof(self):
        async def scenario():
            return await read_frame(_stream_with(b""))

        assert _run(scenario()) is None

    def test_read_frame_torn_frame(self):
        async def scenario():
            whole = encode_frame({"op": "ping"})
            with pytest.raises(FrameError):
                await read_frame(_stream_with(whole[: len(whole) - 2]))

        _run(scenario())

    def test_read_frame_oversize(self):
        async def scenario():
            frame = encode_frame({"op": "ping"})
            with pytest.raises(FrameError):
                await read_frame(_stream_with(frame), max_bytes=4)

        _run(scenario())


class TestFrameReader:
    def test_many_frames_one_chunk(self):
        # The buffered reader's whole point: a pipelined burst arrives in
        # one socket read and every frame slices out of the buffer.
        frames = [encode_frame({"id": index}) for index in range(50)]

        async def scenario():
            reader = FrameReader(_stream_with(b"".join(frames)))
            got = []
            while True:
                frame = await reader.next()
                if frame is None:
                    break
                got.append(frame)
            return got

        assert _run(scenario()) == [{"id": index} for index in range(50)]

    def test_same_contract_as_read_frame(self):
        async def clean():
            return await FrameReader(_stream_with(b"")).next()

        assert _run(clean()) is None

        async def torn():
            whole = encode_frame({"op": "ping"})
            with pytest.raises(FrameError):
                await FrameReader(_stream_with(whole[:-1])).next()

        _run(torn())

        async def oversize():
            frame = encode_frame({"op": "ping"})
            with pytest.raises(FrameError):
                await FrameReader(_stream_with(frame), max_bytes=4).next()

        _run(oversize())


class TestTypedErrors:
    def test_error_reply_shape(self):
        reply = error_reply("overloaded", "queue full", 7, scope="server")
        assert reply == {
            "ok": False,
            "id": 7,
            "error": {
                "type": "overloaded",
                "message": "queue full",
                "scope": "server",
            },
        }

    def test_reply_without_id(self):
        assert "id" not in error_reply("bad-frame", "torn")

    def test_closed_type_set(self):
        with pytest.raises(ValueError):
            error_reply("surprise", "nope")
        with pytest.raises(ValueError):
            ServeError("surprise", "nope")

    def test_serve_error_to_reply(self):
        exc = ServeError("unknown-session", "no session 'x'")
        assert exc.reply(4)["error"]["type"] == "unknown-session"
        assert exc.reply(4)["id"] == 4

    def test_overloaded_is_a_known_type(self):
        assert "overloaded" in ERROR_TYPES
        assert MAX_FRAME_BYTES >= 1 << 20
