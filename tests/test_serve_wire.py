"""Tests for the serve wire protocol (frames, typed errors, FrameReader,
and the FrameReader-vs-read_frame differential over a real socketpair)."""

import asyncio
import socket

import pytest

from repro.serve.wire import (
    ERROR_TYPES,
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    ServeError,
    decode_frame_payload,
    encode_frame,
    error_reply,
    read_frame,
)


def _stream_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _run(coro):
    return asyncio.run(coro)


class TestFrames:
    def test_round_trip(self):
        frame = encode_frame({"op": "ping", "id": 3})
        assert decode_frame_payload(frame[4:]) == {"op": "ping", "id": 3}

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"a": 1})
        assert int.from_bytes(frame[:4], "big") == len(frame) - 4

    def test_compact_deterministic_encoding(self):
        # sorted keys + no whitespace: identical objects encode identically,
        # which the load generator's pre-encoding relies on.
        assert encode_frame({"b": 2, "a": 1}) == encode_frame({"a": 1, "b": 2})
        assert b" " not in encode_frame({"a": [1, 2], "b": {"c": 3}})

    def test_non_object_payload_rejected(self):
        with pytest.raises(FrameError):
            decode_frame_payload(b"[1,2,3]")
        with pytest.raises(FrameError):
            decode_frame_payload(b"not json")

    def test_read_frame_clean_eof(self):
        async def scenario():
            return await read_frame(_stream_with(b""))

        assert _run(scenario()) is None

    def test_read_frame_torn_frame(self):
        async def scenario():
            whole = encode_frame({"op": "ping"})
            with pytest.raises(FrameError):
                await read_frame(_stream_with(whole[: len(whole) - 2]))

        _run(scenario())

    def test_read_frame_oversize(self):
        async def scenario():
            frame = encode_frame({"op": "ping"})
            with pytest.raises(FrameError):
                await read_frame(_stream_with(frame), max_bytes=4)

        _run(scenario())


class TestFrameReader:
    def test_many_frames_one_chunk(self):
        # The buffered reader's whole point: a pipelined burst arrives in
        # one socket read and every frame slices out of the buffer.
        frames = [encode_frame({"id": index}) for index in range(50)]

        async def scenario():
            reader = FrameReader(_stream_with(b"".join(frames)))
            got = []
            while True:
                frame = await reader.next()
                if frame is None:
                    break
                got.append(frame)
            return got

        assert _run(scenario()) == [{"id": index} for index in range(50)]

    def test_same_contract_as_read_frame(self):
        async def clean():
            return await FrameReader(_stream_with(b"")).next()

        assert _run(clean()) is None

        async def torn():
            whole = encode_frame({"op": "ping"})
            with pytest.raises(FrameError):
                await FrameReader(_stream_with(whole[:-1])).next()

        _run(torn())

        async def oversize():
            frame = encode_frame({"op": "ping"})
            with pytest.raises(FrameError):
                await FrameReader(_stream_with(frame), max_bytes=4).next()

        _run(oversize())


async def _consume_with_read_frame(reader, max_bytes):
    frames = []
    while True:
        frame = await read_frame(reader, max_bytes=max_bytes)
        if frame is None:
            return frames
        frames.append(frame)


async def _consume_with_frame_reader(reader, max_bytes):
    frames = []
    buffered = FrameReader(reader, max_bytes=max_bytes)
    while True:
        frame = await buffered.next()
        if frame is None:
            return frames
        frames.append(frame)


def _both_outcomes(data: bytes, max_bytes: int = MAX_FRAME_BYTES):
    """Feed ``data`` through a real socketpair into both reader paths.

    Returns the two outcomes as ``("ok", frames)`` or ``("error", None)``
    pairs, so a differential test can assert the buffered reader and the
    readexactly reader agree on both the parsed frames and whether the
    stream ends in a FrameError.
    """
    outcomes = []
    for consume in (_consume_with_read_frame, _consume_with_frame_reader):

        async def scenario():
            local, remote = socket.socketpair()
            try:
                remote.sendall(data)
                remote.close()
                reader, writer = await asyncio.open_connection(sock=local)
                try:
                    return "ok", await consume(reader, max_bytes)
                except FrameError:
                    return "error", None
                finally:
                    writer.close()
            finally:
                local.close()

        outcomes.append(asyncio.run(scenario()))
    return outcomes


class TestFrameReaderSocketpairDifferential:
    """FrameReader must behave identically to read_frame on real socket
    bytes: same frames out, same FrameError points, same clean-EOF -- the
    contract that lets the server and the load clients pick either."""

    def test_torn_at_every_split_point(self):
        # Close the peer after every possible prefix of a two-frame
        # stream: a cut at a frame boundary is a clean EOF, anywhere else
        # is a FrameError -- identically for both readers.
        stream = encode_frame({"op": "a", "n": 1}) + encode_frame({"op": "b"})
        boundaries = {0, len(stream) - len(encode_frame({"op": "b"})),
                      len(stream)}
        for cut in range(len(stream) + 1):
            legacy, buffered = _both_outcomes(stream[:cut])
            assert legacy == buffered, f"divergence at cut={cut}"
            if cut in boundaries:
                assert legacy[0] == "ok", f"boundary cut={cut} not clean EOF"
            else:
                assert legacy[0] == "error", f"mid-frame cut={cut} no error"

    def test_oversize_declaration_mid_pipeline(self):
        # Two good frames, then a header declaring a payload over the
        # limit: both readers must yield the good frames' worth of
        # progress and then refuse, without reading the oversize payload.
        good = encode_frame({"id": 1}) + encode_frame({"id": 2})
        oversize = (4096).to_bytes(4, "big") + b"x" * 16
        legacy, buffered = _both_outcomes(good + oversize, max_bytes=1024)
        assert legacy == buffered == ("error", None)

    def test_burst_of_pipelined_frames_in_one_segment(self):
        # N frames in one sendall (one TCP segment's worth): both readers
        # must produce the identical frame sequence.
        stream = b"".join(encode_frame({"id": index}) for index in range(64))
        legacy, buffered = _both_outcomes(stream)
        assert legacy == buffered
        assert legacy == ("ok", [{"id": index} for index in range(64)])

    def test_single_frame_then_clean_eof(self):
        legacy, buffered = _both_outcomes(encode_frame({"op": "ping"}))
        assert legacy == buffered == ("ok", [{"op": "ping"}])


class TestTypedErrors:
    def test_error_reply_shape(self):
        reply = error_reply("overloaded", "queue full", 7, scope="server")
        assert reply == {
            "ok": False,
            "id": 7,
            "error": {
                "type": "overloaded",
                "message": "queue full",
                "scope": "server",
            },
        }

    def test_reply_without_id(self):
        assert "id" not in error_reply("bad-frame", "torn")

    def test_closed_type_set(self):
        with pytest.raises(ValueError):
            error_reply("surprise", "nope")
        with pytest.raises(ValueError):
            ServeError("surprise", "nope")

    def test_serve_error_to_reply(self):
        exc = ServeError("unknown-session", "no session 'x'")
        assert exc.reply(4)["error"]["type"] == "unknown-session"
        assert exc.reply(4)["id"] == 4

    def test_overloaded_is_a_known_type(self):
        assert "overloaded" in ERROR_TYPES
        assert MAX_FRAME_BYTES >= 1 << 20
