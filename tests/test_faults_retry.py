"""Tests for verification-driven retry: policy, budgets, degradation,
seeded determinism, and the convergence acceptance bar.

The convergence classes are the PR's acceptance criterion: under transient
single-bit-flip faults (well under one flip per round), the verification
protocols must reach the *exact* intersection in >= 99% of 1000 seeded
trials -- the retry loop's whole reason to exist.
"""

import random

import pytest

from conftest import make_instance
from repro.core.amplify import AmplifiedIntersection
from repro.faults.models import BitFlip, Drop, FlipOnce
from repro.faults.plan import FaultPlan
from repro.faults.retry import (
    RetryPolicy,
    RobustOutcome,
    attempt_seed,
    run_with_retry,
)
from repro.protocols.bucket_verify import BucketVerifyProtocol

UNIVERSE = 1 << 16


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1
        assert policy.delay(0) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": -1.0},
        {"backoff_factor": 0.5},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0)
        assert [policy.delay(i) for i in range(4)] == [1.0, 2.0, 4.0, 8.0]


class TestAdaptiveBudget:
    def test_static_by_default(self):
        policy = RetryPolicy(attempt_bit_budget=100)
        assert policy.effective_budget(0, 0) == 100
        assert policy.effective_budget(3, 50) == 100

    def test_none_budget_stays_none(self):
        policy = RetryPolicy(adaptive_budget=True)
        assert policy.effective_budget(2, 10) is None

    def test_first_attempt_uses_base_budget(self):
        policy = RetryPolicy(attempt_bit_budget=100, adaptive_budget=True)
        assert policy.effective_budget(0, 0) == 100

    def test_scales_with_observed_fault_rate(self):
        # budget * (1 + faults/attempts): each observed fault per past
        # attempt buys another full budget's worth of headroom.
        policy = RetryPolicy(attempt_bit_budget=100, adaptive_budget=True)
        assert policy.effective_budget(1, 0) == 100
        assert policy.effective_budget(1, 1) == 200
        assert policy.effective_budget(2, 1) == 150
        assert policy.effective_budget(2, 6) == 400

    def test_adaptive_budget_rescues_faulty_session(self, rng):
        """Under heavy flips a tight static budget aborts every attempt;
        the adaptive policy widens the cutoff from observed fault counts
        and converges instead."""
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        clean = run_with_retry(protocol, s, t, seed=0)
        budget = int(clean.total_bits * 1.05)

        static = RetryPolicy(max_attempts=6, attempt_bit_budget=budget)
        adaptive = RetryPolicy(
            max_attempts=6, attempt_bit_budget=budget, adaptive_budget=True
        )
        flaky = BitFlip(0.01)
        static_outcome = run_with_retry(
            protocol, s, t, seed=1, policy=static,
            plan=FaultPlan(flaky, seed=7),
        )
        adaptive_outcome = run_with_retry(
            protocol, s, t, seed=1, policy=adaptive,
            plan=FaultPlan(flaky, seed=7),
        )
        # Same fault stream; the adaptive run can only do better (fewer
        # or equal aborted attempts) because its later cutoffs are wider.
        static_aborts = static_outcome.failure_reasons.count("aborted")
        adaptive_aborts = adaptive_outcome.failure_reasons.count("aborted")
        assert adaptive_aborts <= static_aborts
        assert adaptive_outcome.attempts <= static_outcome.attempts


class TestAttemptSeed:
    def test_deterministic(self):
        assert attempt_seed(3, 1) == attempt_seed(3, 1)

    def test_attempts_get_distinct_seeds(self):
        seeds = {attempt_seed(0, attempt) for attempt in range(50)}
        assert len(seeds) == 50

    def test_sessions_get_distinct_seeds(self):
        assert attempt_seed(0, 0) != attempt_seed(1, 0)


class TestRunWithRetry:
    def test_clean_channel_single_attempt(self, rng):
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        outcome = run_with_retry(protocol, s, t, seed=0)
        assert not outcome.degraded
        assert outcome.attempts == 1
        assert outcome.failure_reasons == []
        assert outcome.agreed
        assert outcome.correct_for(s, t)
        assert outcome.total_bits > 0

    def test_transient_flip_converges(self, rng):
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        plan = FaultPlan(FlipOnce(), seed=0)
        outcome = run_with_retry(protocol, s, t, seed=0, plan=plan)
        assert plan.injected == 1
        assert not outcome.degraded
        assert outcome.correct_for(s, t)

    def test_total_loss_degrades_to_superset_contract(self, rng):
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        plan = FaultPlan(Drop(1.0), seed=0)
        policy = RetryPolicy(max_attempts=3)
        outcome = run_with_retry(protocol, s, t, seed=0, policy=policy,
                                 plan=plan)
        assert outcome.degraded
        assert outcome.degraded_mode == "superset"
        assert outcome.attempts == 3
        assert outcome.failure_reasons == ["deadlock"] * 3
        # The degradation contract: own inputs, the only certified
        # supersets of S n T available without a trusted channel.
        assert outcome.alice_output == s and outcome.bob_output == t
        assert s & t <= outcome.alice_output
        assert s & t <= outcome.bob_output

    def test_bit_budget_is_the_policy_timeout(self, rng):
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        policy = RetryPolicy(max_attempts=2, attempt_bit_budget=8)
        outcome = run_with_retry(protocol, s, t, seed=0, policy=policy)
        assert outcome.degraded
        assert outcome.failure_reasons == ["aborted", "aborted"]

    def test_transcript_accumulates_across_attempts(self, rng):
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        clean = run_with_retry(protocol, s, t, seed=0)
        plan = FaultPlan(FlipOnce(), seed=0)
        faulty = run_with_retry(protocol, s, t, seed=0, plan=plan)
        if faulty.attempts > 1:
            # Bits paid for the failed attempt are not forgotten.
            assert faulty.total_bits > clean.total_bits

    def test_simulated_backoff_accrues_on_failures(self, rng):
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        policy = RetryPolicy(max_attempts=3, backoff_base=1.0)
        plan = FaultPlan(Drop(1.0), seed=0)
        outcome = run_with_retry(protocol, s, t, seed=0, policy=policy,
                                 plan=plan)
        assert outcome.simulated_delay == 1.0 + 2.0 + 4.0

    def test_malformed_inputs_raise_as_caller_bugs(self):
        protocol = BucketVerifyProtocol(UNIVERSE, 4)
        with pytest.raises(ValueError):
            run_with_retry(protocol, {UNIVERSE + 1}, {1}, seed=0)

    def test_outcome_helpers(self):
        outcome = RobustOutcome(
            alice_output=frozenset({1}),
            bob_output=frozenset({1, 2}),
            protocol_name="x",
            attempts=1,
            total_bits=0,
            total_messages=0,
            degraded=True,
        )
        assert not outcome.agreed
        assert not outcome.correct_for({1}, {1})


class TestSeededDeterminism:
    def test_same_seed_same_schedule_and_outcome(self, rng):
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        results = []
        for _ in range(2):
            plan = FaultPlan(BitFlip(0.2), seed=11)
            outcome = run_with_retry(protocol, s, t, seed=5, plan=plan)
            results.append((plan.log, plan.counts, outcome))
        (log_a, counts_a, out_a), (log_b, counts_b, out_b) = results
        assert log_a == log_b
        assert counts_a == counts_b
        assert out_a.alice_output == out_b.alice_output
        assert out_a.bob_output == out_b.bob_output
        assert out_a.attempts == out_b.attempts
        assert out_a.total_bits == out_b.total_bits
        assert out_a.failure_reasons == out_b.failure_reasons

    def test_different_seeds_diverge(self, rng):
        # Not a certainty for any single instance, but over 20 sessions at
        # a 20% flip rate two disjoint coin streams firing identically is
        # (1 - p)^huge -- a failure here means the plan ignores its seed.
        protocol = BucketVerifyProtocol(UNIVERSE, 32)
        s, t = make_instance(rng, UNIVERSE, 32, 0.5)
        logs = set()
        for fault_seed in range(20):
            plan = FaultPlan(BitFlip(0.2), seed=fault_seed)
            run_with_retry(protocol, s, t, seed=5, plan=plan)
            logs.add(tuple(plan.log))
        assert len(logs) > 1


class TestConvergenceAcceptance:
    """The >= 99%-of-1000-trials acceptance bar for transient bit flips."""

    TRIALS = 1000
    RATE = 0.01  # per-message: well under one flip per round

    def _converged(self, protocol):
        rng = random.Random(1234)
        exact = 0
        for trial in range(self.TRIALS):
            s, t = make_instance(rng, UNIVERSE, 32, 0.5)
            plan = FaultPlan(BitFlip(self.RATE), seed=trial)
            outcome = run_with_retry(protocol, s, t, seed=trial, plan=plan)
            if not outcome.degraded and outcome.correct_for(s, t):
                exact += 1
        return exact

    def test_bucket_verify_converges(self):
        exact = self._converged(BucketVerifyProtocol(UNIVERSE, 32))
        assert exact >= 0.99 * self.TRIALS, f"only {exact}/{self.TRIALS} exact"

    def test_amplified_tree_converges(self):
        exact = self._converged(AmplifiedIntersection(UNIVERSE, 32))
        assert exact >= 0.99 * self.TRIALS, f"only {exact}/{self.TRIALS} exact"
