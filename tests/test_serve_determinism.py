"""The determinism gate (satellite contract): serial == async == coalesced.

One seeded mix replayed three ways -- through the serial reference runner,
through the async server with coalescing off, and with coalescing on --
must produce identical per-session counter fingerprints and an identical
aggregate fingerprint.  This is what licenses the perf claim: the batched
path is the *same computation*, not a faster approximation.
"""

import pytest

from repro.serve import LoadMix, SessionRegistry, run_load, run_mix_serial
from repro.serve.coalescer import run_scalar_operation
from repro.serve.loadgen import generate_schedule

MIX = LoadMix(
    name="determinism",
    seed=7,
    sessions=12,
    ops_per_session=6,
    universe_size=1 << 24,
    set_sizes=(16, 64),
)

#: The multi-round shape: the same gate over the round-barrier driver.
MULTIROUND_MIX = LoadMix(
    name="determinism-multiround",
    seed=7,
    sessions=12,
    ops_per_session=4,
    universe_size=1 << 24,
    set_sizes=(16, 64),
    rounds=2,
)

#: A damaged channel: operations run the retry loop and some degrade; the
#: degraded flag is part of the counters fingerprint, so the three-way
#: comparison also pins *which* operations degraded.
FAULT_MIX = LoadMix(
    name="determinism-faults",
    seed=7,
    sessions=6,
    ops_per_session=4,
    universe_size=1 << 20,
    set_sizes=(32,),
    rounds=2,
    faults="drop@0.7:seed=3",
)


@pytest.fixture(scope="module")
def serial_reference():
    return run_mix_serial(MIX)


class TestDeterminism:
    def test_serial_runner_is_self_deterministic(self, serial_reference):
        assert run_mix_serial(MIX) == serial_reference

    def test_async_scalar_matches_serial(self, serial_reference):
        report = run_load(MIX, coalesce=False, tick_s=0.001, check_serial=True)
        assert report.shed == 0 and not report.errors
        assert report.fingerprint == serial_reference["fingerprint"]
        assert report.serial_match is True

    def test_async_coalesced_matches_serial(self, serial_reference):
        report = run_load(MIX, coalesce=True, tick_s=0.001, check_serial=True)
        assert report.shed == 0 and not report.errors
        assert report.fingerprint == serial_reference["fingerprint"]
        assert report.serial_match is True
        # The run must actually have exercised the batch path for this
        # comparison to mean anything.
        assert report.coalesced_ops > 0

    def test_per_session_counters_identical(self):
        # Stronger than the aggregate: every session's (index, kind, bits,
        # messages) history matches the serial replay session by session.
        registry = SessionRegistry(MIX.seed)
        for i in range(MIX.sessions):
            registry.open(
                MIX.session_key(i),
                universe_size=MIX.universe_size,
                max_set_size=MIX.session_set_size(i),
                rounds=MIX.rounds,
                seed=MIX.session_seed(i),
            )
        for op in generate_schedule(MIX):
            run_scalar_operation(
                registry.get(MIX.session_key(op.session_index)),
                op.kind,
                list(op.alice),
                list(op.bob),
            )
        serial_prints = {
            key: registry.get(key).counters_fingerprint()
            for key in registry.keys()
        }

        report = run_load(MIX, coalesce=True, tick_s=0.001)
        assert report.shed == 0 and not report.errors
        # The aggregate fingerprint is the sha256 over exactly these
        # per-session fingerprints, so equality here plus the aggregate
        # equality above pins the whole construction.
        assert registry.fingerprint() == report.fingerprint
        assert len(serial_prints) == MIX.sessions


class TestMultiRoundDeterminism:
    """The three-way gate extended to the round-barrier multi-round ops."""

    @pytest.fixture(scope="class")
    def serial_reference(self):
        return run_mix_serial(MULTIROUND_MIX)

    def test_async_scalar_matches_serial(self, serial_reference):
        report = run_load(
            MULTIROUND_MIX, coalesce=False, tick_s=0.001, check_serial=True
        )
        assert report.shed == 0 and not report.errors
        assert report.fingerprint == serial_reference["fingerprint"]
        assert report.serial_match is True

    def test_async_coalesced_matches_serial(self, serial_reference):
        report = run_load(
            MULTIROUND_MIX, coalesce=True, tick_s=0.001, check_serial=True
        )
        assert report.shed == 0 and not report.errors
        assert report.fingerprint == serial_reference["fingerprint"]
        assert report.serial_match is True
        # The barrier path must actually have run for this to mean
        # anything: multi-round ops coalesce whenever >= 2 same-shape
        # lanes land in one tick.
        assert report.coalesced_ops > 0


class TestFaultMixDeterminism:
    """A faulted mix replays bit-identically, degradations included."""

    def test_serial_runner_is_self_deterministic(self):
        first = run_mix_serial(FAULT_MIX)
        assert run_mix_serial(FAULT_MIX) == first
        # drop@0.7 with a 5-attempt budget must actually degrade some
        # operations or the fixture is not exercising the contract.
        assert first["degraded"] > 0

    def test_async_matches_serial_with_degradations(self):
        reference = run_mix_serial(FAULT_MIX)
        report = run_load(FAULT_MIX, tick_s=0.001, check_serial=True)
        assert report.shed == 0 and not report.errors
        assert report.serial_match is True
        assert report.degraded == reference["degraded"] > 0
        # Faulted sessions stay on the scalar path by contract.
        assert report.coalesced_ops == 0
