"""The determinism gate (satellite contract): serial == async == coalesced.

One seeded mix replayed three ways -- through the serial reference runner,
through the async server with coalescing off, and with coalescing on --
must produce identical per-session counter fingerprints and an identical
aggregate fingerprint.  This is what licenses the perf claim: the batched
path is the *same computation*, not a faster approximation.
"""

import pytest

from repro.serve import LoadMix, SessionRegistry, run_load, run_mix_serial
from repro.serve.coalescer import run_scalar_operation
from repro.serve.loadgen import generate_schedule

MIX = LoadMix(
    name="determinism",
    seed=7,
    sessions=12,
    ops_per_session=6,
    universe_size=1 << 24,
    set_sizes=(16, 64),
)


@pytest.fixture(scope="module")
def serial_reference():
    return run_mix_serial(MIX)


class TestDeterminism:
    def test_serial_runner_is_self_deterministic(self, serial_reference):
        assert run_mix_serial(MIX) == serial_reference

    def test_async_scalar_matches_serial(self, serial_reference):
        report = run_load(MIX, coalesce=False, tick_s=0.001, check_serial=True)
        assert report.shed == 0 and not report.errors
        assert report.fingerprint == serial_reference["fingerprint"]
        assert report.serial_match is True

    def test_async_coalesced_matches_serial(self, serial_reference):
        report = run_load(MIX, coalesce=True, tick_s=0.001, check_serial=True)
        assert report.shed == 0 and not report.errors
        assert report.fingerprint == serial_reference["fingerprint"]
        assert report.serial_match is True
        # The run must actually have exercised the batch path for this
        # comparison to mean anything.
        assert report.coalesced_ops > 0

    def test_per_session_counters_identical(self):
        # Stronger than the aggregate: every session's (index, kind, bits,
        # messages) history matches the serial replay session by session.
        registry = SessionRegistry(MIX.seed)
        for i in range(MIX.sessions):
            registry.open(
                MIX.session_key(i),
                universe_size=MIX.universe_size,
                max_set_size=MIX.session_set_size(i),
                rounds=MIX.rounds,
                seed=MIX.session_seed(i),
            )
        for op in generate_schedule(MIX):
            run_scalar_operation(
                registry.get(MIX.session_key(op.session_index)),
                op.kind,
                list(op.alice),
                list(op.bob),
            )
        serial_prints = {
            key: registry.get(key).counters_fingerprint()
            for key in registry.keys()
        }

        report = run_load(MIX, coalesce=True, tick_s=0.001)
        assert report.shed == 0 and not report.errors
        # The aggregate fingerprint is the sha256 over exactly these
        # per-session fingerprints, so equality here plus the aggregate
        # equality above pins the whole construction.
        assert registry.fingerprint() == report.fingerprint
        assert len(serial_prints) == MIX.sessions
