"""Tests for the trace event schema and the JSONL parser."""

import pytest

from repro.obs.schema import (
    EVENT_TYPES,
    load_trace,
    parse_jsonl,
    validate_trace_events,
)
from repro.obs.trace import RingBufferSink, Tracer


def valid_event(event_type="message.open", **overrides):
    base = {
        "ts": 1.0,
        "seq": 1,
        "type": event_type,
        "sender": "alice",
        "index": 0,
        "bits": 8,
    }
    base.update(overrides)
    return base


class TestValidate:
    def test_clean_event_passes(self):
        assert validate_trace_events([valid_event()]) == []

    def test_missing_envelope_field_flagged(self):
        event = valid_event()
        del event["seq"]
        problems = validate_trace_events([event])
        assert any("seq" in p for p in problems)

    def test_unknown_type_flagged(self):
        problems = validate_trace_events([valid_event(event_type="no.such")])
        assert any("unknown event type" in p for p in problems)

    def test_missing_required_payload_field_flagged(self):
        event = valid_event()
        del event["bits"]
        problems = validate_trace_events([event])
        assert any("missing field 'bits'" in p for p in problems)

    def test_extra_fields_are_tolerated(self):
        assert validate_trace_events([valid_event(extra="fine")]) == []

    def test_bad_ts_and_seq_flagged(self):
        problems = validate_trace_events(
            [valid_event(ts="yesterday", seq=0)]
        )
        assert any("ts" in p for p in problems)
        assert any("seq" in p for p in problems)

    def test_negative_bits_flagged(self):
        problems = validate_trace_events([valid_event(bits=-1)])
        assert any("negative bits" in p for p in problems)

    def test_zero_bit_message_open_is_a_violation(self):
        # The transcript convention this schema polices: empty payloads
        # never open messages, so a 0-bit message.open in a trace means the
        # instrumented transcript broke the convention.
        problems = validate_trace_events([valid_event(bits=0)])
        assert any("must not open" in p for p in problems)
        # ...but a 0-bit *merge* is legal (same-sender empty send).
        assert (
            validate_trace_events(
                [valid_event(event_type="message.merge", bits=0)]
            )
            == []
        )

    def test_non_dict_event_flagged(self):
        problems = validate_trace_events(["not an event"])
        assert any("not an object" in p for p in problems)

    def test_every_emitted_type_is_in_the_taxonomy(self):
        # The taxonomy is closed; whatever the Tracer emits in the library
        # must validate.  Spot-check one record per type with its required
        # fields.
        tracer = Tracer([RingBufferSink()])
        for event_type, required in EVENT_TYPES.items():
            record = tracer.emit(
                event_type, **{field: 1 for field in required}
            )
            if event_type == "message.open":
                record["bits"] = 1
            assert validate_trace_events([record]) == []


class TestFaultEventTypes:
    """The four fault-taxonomy event types added with repro.faults."""

    def test_types_are_in_the_closed_taxonomy(self):
        assert EVENT_TYPES["fault.injected"] == ("kind", "sender")
        assert EVENT_TYPES["retry.attempt"] == ("protocol", "attempt",
                                                "reason")
        assert EVENT_TYPES["retry.exhausted"] == ("protocol", "attempts")
        assert EVENT_TYPES["degraded.output"] == ("protocol", "mode")

    @pytest.mark.parametrize("event_type,payload", [
        ("fault.injected", {"kind": "bitflip", "sender": "alice"}),
        ("retry.attempt", {"protocol": "bucket-verify", "attempt": 0,
                           "reason": "deadlock"}),
        ("retry.exhausted", {"protocol": "bucket-verify", "attempts": 5}),
        ("degraded.output", {"protocol": "bucket-verify",
                             "mode": "superset"}),
    ])
    def test_well_formed_events_validate(self, event_type, payload):
        event = {"ts": 1.0, "seq": 1, "type": event_type, **payload}
        assert validate_trace_events([event]) == []

    @pytest.mark.parametrize("event_type,missing", [
        ("fault.injected", "kind"),
        ("retry.attempt", "reason"),
        ("retry.exhausted", "attempts"),
        ("degraded.output", "mode"),
    ])
    def test_missing_payload_field_flagged(self, event_type, missing):
        required = EVENT_TYPES[event_type]
        event = {"ts": 1.0, "seq": 1, "type": event_type,
                 **{f: 1 for f in required if f != missing}}
        problems = validate_trace_events([event])
        assert any(missing in p for p in problems)

    def test_emitted_fault_events_validate_end_to_end(self, rng):
        # A traced faulty session must produce a schema-clean stream with
        # all four types present: injected faults during attempts, a
        # retry.attempt per failure, and the exhaustion + degradation pair.
        from conftest import make_instance
        from repro.faults.models import Drop
        from repro.faults.plan import FaultPlan
        from repro.faults.retry import RetryPolicy, run_with_retry
        from repro.obs.state import STATE
        from repro.protocols.bucket_verify import BucketVerifyProtocol

        ring = RingBufferSink()
        previous = STATE.tracer
        STATE.install(Tracer([ring]))
        try:
            protocol = BucketVerifyProtocol(1 << 14, 16)
            s, t = make_instance(rng, 1 << 14, 16, 0.5)
            outcome = run_with_retry(
                protocol, s, t, seed=0,
                policy=RetryPolicy(max_attempts=2),
                plan=FaultPlan(Drop(1.0), seed=0),
            )
        finally:
            STATE.install(previous)
        assert outcome.degraded
        events = ring.events()
        assert validate_trace_events(events) == []
        seen = {event["type"] for event in events}
        assert {"fault.injected", "retry.attempt", "retry.exhausted",
                "degraded.output"} <= seen


class TestServeEventTypes:
    """The serve.batch event added with the coalescing server."""

    def test_type_is_in_the_closed_taxonomy(self):
        assert EVENT_TYPES["serve.batch"] == ("ops", "lanes", "groups")

    def test_well_formed_event_validates(self):
        event = {"ts": 1.0, "seq": 1, "type": "serve.batch",
                 "ops": 48, "lanes": 4096, "groups": 2}
        assert validate_trace_events([event]) == []

    @pytest.mark.parametrize("missing", ["ops", "lanes", "groups"])
    def test_missing_payload_field_flagged(self, missing):
        event = {"ts": 1.0, "seq": 1, "type": "serve.batch",
                 **{f: 1 for f in EVENT_TYPES["serve.batch"] if f != missing}}
        problems = validate_trace_events([event])
        assert any(missing in p for p in problems)

    def test_coalescer_emits_schema_clean_events(self, rng):
        # Drive a real coalesced batch under an installed tracer and
        # validate the emitted stream end to end.
        import asyncio

        from conftest import make_instance
        from repro.obs.state import STATE
        from repro.serve import BatchCoalescer, SessionRegistry
        from repro.serve.coalescer import PendingOp

        ring = RingBufferSink()
        previous = STATE.tracer
        STATE.install(Tracer([ring]))
        try:
            registry = SessionRegistry(0)
            for i in range(4):
                registry.open(f"s{i}", universe_size=1 << 20,
                              max_set_size=64, rounds=1)

            async def scenario():
                coalescer = BatchCoalescer(registry, tick_s=0.0)
                await coalescer.start()
                futures = []
                for i in range(4):
                    s, t = make_instance(rng, 1 << 20, 64, 0.5)
                    future = asyncio.get_running_loop().create_future()
                    futures.append(future)
                    coalescer.submit(
                        PendingOp(entry=registry.get(f"s{i}"), kind="size",
                                  alice_set=s, bob_set=t, future=future)
                    )
                await asyncio.gather(*futures)
                await coalescer.stop()

            asyncio.run(scenario())
        finally:
            STATE.install(previous)
        batch_events = [
            event for event in ring.events() if event["type"] == "serve.batch"
        ]
        assert batch_events, "coalesced dispatch must emit serve.batch"
        assert validate_trace_events(ring.events()) == []
        assert batch_events[0]["ops"] == 4
        assert batch_events[0]["groups"] == 1


class TestJsonl:
    def test_parse_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ts": 1.0, "seq": 1, "type": "engine.start"}\n\n')
        events = load_trace(str(path))
        assert len(events) == 1
        assert validate_trace_events(events) == []

    def test_torn_line_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_jsonl('{"ts": 1}\n{"torn...')


class TestRecoveryEvents:
    """Taxonomy v4: the multiparty recovery layer's events."""

    def test_schema_version_is_four(self):
        from repro.obs.schema import TRACE_SCHEMA_VERSION

        assert TRACE_SCHEMA_VERSION == 4

    def test_recovery_attempt_validates(self):
        event = {
            "ts": 1.0,
            "seq": 1,
            "type": "recovery.attempt",
            "protocol": "coordinator-multiparty",
            "attempt": 0,
            "reason": "crashed",
            "crashed": 2,
            "survivors": 6,
        }
        assert validate_trace_events([event]) == []

    def test_recovery_outcome_validates(self):
        event = {
            "ts": 1.0,
            "seq": 1,
            "type": "recovery.outcome",
            "protocol": "binary-tree-multiparty",
            "status": "recovered",
            "attempts": 2,
            "recovery_bits": 512,
            "recovery_rounds": 9,
        }
        assert validate_trace_events([event]) == []

    def test_recovery_attempt_requires_reason(self):
        event = {
            "ts": 1.0,
            "seq": 1,
            "type": "recovery.attempt",
            "protocol": "coordinator-multiparty",
            "attempt": 0,
        }
        problems = validate_trace_events([event])
        assert any("missing field 'reason'" in p for p in problems)

    def test_recovery_outcome_requires_status(self):
        event = {
            "ts": 1.0,
            "seq": 1,
            "type": "recovery.outcome",
            "protocol": "coordinator-multiparty",
            "attempts": 1,
        }
        problems = validate_trace_events([event])
        assert any("missing field 'status'" in p for p in problems)
