"""Tests for canonical serialization and fingerprinting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.fingerprint import (
    Fingerprinter,
    canonical_bytes,
    polynomial_fingerprint,
)
from repro.util.bits import BitString
from repro.util.rng import SharedRandomness


class TestCanonicalBytes:
    def test_equal_values_equal_bytes(self):
        assert canonical_bytes((1, 2, 3)) == canonical_bytes((1, 2, 3))
        assert canonical_bytes(frozenset({3, 1, 2})) == canonical_bytes({1, 2, 3})

    def test_set_order_independent(self):
        assert canonical_bytes({5, 900, 13}) == canonical_bytes({13, 5, 900})

    def test_type_tags_separate(self):
        # Values of different types must never serialize identically.
        candidates = [
            0,
            False,
            None,
            "",
            b"",
            (),
            frozenset(),
            "0",
            (0,),
            {0},
            BitString(0, 1),
        ]
        encodings = [canonical_bytes(value) for value in candidates]
        assert len(set(encodings)) == len(encodings)

    def test_concatenation_ambiguity_avoided(self):
        assert canonical_bytes((1, 23)) != canonical_bytes((12, 3))
        assert canonical_bytes(("ab", "c")) != canonical_bytes(("a", "bc"))

    def test_nested_structures(self):
        a = canonical_bytes((1, (2, {3, 4}), "x"))
        b = canonical_bytes((1, (2, {4, 3}), "x"))
        assert a == b

    def test_bitstring_length_matters(self):
        assert canonical_bytes(BitString(1, 1)) != canonical_bytes(BitString(1, 2))

    def test_tuple_vs_list_equivalent(self):
        assert canonical_bytes([1, 2]) == canonical_bytes((1, 2))

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            canonical_bytes(-1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    @given(
        st.recursive(
            st.one_of(st.integers(0, 2**64), st.text(max_size=6), st.booleans()),
            lambda children: st.frozensets(children, max_size=4)
            | st.tuples(children, children),
            max_leaves=12,
        ),
    )
    def test_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)


class TestFingerprinter:
    def test_width_respected(self):
        printer = Fingerprinter(SharedRandomness(1).stream("f"), width=13)
        for value in (0, "x", (1, 2), frozenset(range(10))):
            assert 0 <= printer.value_of(value) < (1 << 13)
            assert len(printer.bits_of(value)) == 13

    def test_shared_between_parties(self):
        a = Fingerprinter(SharedRandomness(2).stream("f"), width=32)
        b = Fingerprinter(SharedRandomness(2).stream("f"), width=32)
        assert a.value_of((5, 6)) == b.value_of((5, 6))

    def test_different_salts_differ(self):
        shared = SharedRandomness(2)
        a = Fingerprinter(shared.stream("f1"), width=64)
        b = Fingerprinter(shared.stream("f2"), width=64)
        assert a.value_of("hello") != b.value_of("hello")

    def test_one_sided_equal_always_agree(self):
        printer = Fingerprinter(SharedRandomness(3).stream("f"), width=4)
        assert printer.value_of({1, 2}) == printer.value_of(frozenset({2, 1}))

    def test_collision_rate_matches_width(self):
        # 4-bit fingerprints: distinct values collide w.p. ~1/16.
        shared = SharedRandomness(4)
        collisions = 0
        trials = 3000
        for trial in range(trials):
            printer = Fingerprinter(shared.stream(f"t{trial}"), width=4)
            if printer.value_of(trial) == printer.value_of(trial + 10**9):
                collisions += 1
        assert collisions / trials == pytest.approx(1 / 16, abs=0.03)

    def test_wide_fingerprints_never_collide_in_practice(self):
        printer = Fingerprinter(SharedRandomness(5).stream("f"), width=128)
        values = {printer.value_of(i) for i in range(2000)}
        assert len(values) == 2000

    def test_wider_than_hash_block(self):
        printer = Fingerprinter(SharedRandomness(6).stream("f"), width=600)
        a, b = printer.value_of("a"), printer.value_of("b")
        assert a != b
        assert max(a, b) < (1 << 600)
        assert max(a, b) >= (1 << 300)  # top bits are populated

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            Fingerprinter(SharedRandomness(1).stream("f"), width=0)


class TestPolynomialFingerprint:
    def test_equal_inputs_agree(self):
        stream_a = SharedRandomness(7).stream("p")
        stream_b = SharedRandomness(7).stream("p")
        assert polynomial_fingerprint(b"abc", 20, stream_a) == (
            polynomial_fingerprint(b"abc", 20, stream_b)
        )

    def test_distinct_inputs_rarely_collide(self):
        shared = SharedRandomness(8)
        collisions = 0
        for trial in range(300):
            stream = shared.stream(f"t{trial}")
            stream2 = shared.stream(f"t{trial}")
            a, _ = polynomial_fingerprint(b"hello world", 16, stream)
            b, _ = polynomial_fingerprint(b"hello worle", 16, stream2)
            if a == b:
                collisions += 1
        assert collisions <= 2

    def test_length_extension_distinguished(self):
        stream_a = SharedRandomness(9).stream("p")
        stream_b = SharedRandomness(9).stream("p")
        a, _ = polynomial_fingerprint(b"ab", 16, stream_a)
        b, _ = polynomial_fingerprint(b"ab\x00", 16, stream_b)
        assert a != b

    def test_width_is_exponent_plus_log_length(self):
        stream = SharedRandomness(10).stream("p")
        _, width = polynomial_fingerprint(b"x" * 1000, 30, stream)
        assert 30 <= width <= 30 + 16

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            polynomial_fingerprint(b"x", 0, SharedRandomness(1).stream("p"))
