"""Tests for the disjointness baselines."""

import random

from conftest import make_instance
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.disjointness import (
    DisjointnessViaIntersection,
    HalvingDisjointness,
)


class TestHalvingDisjointness:
    def test_disjoint_instances(self, rng):
        protocol = HalvingDisjointness(1 << 20, 128)
        for seed in range(30):
            s, t = make_instance(rng, 1 << 20, 128, 0.0)
            outcome = protocol.run(s, t, seed=seed)
            assert outcome.alice_output is True
            assert outcome.bob_output is True

    def test_intersecting_instances_never_missed(self, rng):
        # "Intersecting" can only be missed if a common element vanished --
        # impossible by the one-sided filtering invariant.
        protocol = HalvingDisjointness(1 << 20, 128)
        for seed in range(30):
            s, t = make_instance(rng, 1 << 20, 128, 0.2)
            outcome = protocol.run(s, t, seed=seed)
            assert outcome.alice_output is False
            assert outcome.bob_output is False

    def test_single_common_element(self, rng):
        protocol = HalvingDisjointness(1 << 20, 64)
        for seed in range(20):
            sample = rng.sample(range(1 << 20), 127)
            s = frozenset(sample[:64])
            t = frozenset(sample[63:])  # exactly one shared element
            assert protocol.run(s, t, seed=seed).alice_output is False

    def test_empty_sets_are_disjoint(self):
        protocol = HalvingDisjointness(1 << 10, 8)
        assert protocol.run(set(), set(), seed=0).alice_output is True
        assert protocol.run({1}, set(), seed=0).alice_output is True
        assert protocol.run(set(), {1}, seed=0).alice_output is True

    def test_identical_singletons(self):
        protocol = HalvingDisjointness(1 << 10, 1)
        assert protocol.run({5}, {5}, seed=0).alice_output is False
        assert protocol.run({5}, {6}, seed=0).alice_output is True

    def test_linear_communication(self):
        # O(k) bits: the halving phase geometric series dominates.
        rng = random.Random(22)
        per_k = {}
        for k in (64, 256, 1024):
            s, t = make_instance(rng, 1 << 24, k, 0.0)
            bits = HalvingDisjointness(1 << 24, k).run(s, t, seed=0).total_bits
            per_k[k] = bits / k
        values = list(per_k.values())
        assert max(values) < 40
        assert max(values) / min(values) < 3.0

    def test_log_k_rounds(self):
        rng = random.Random(23)
        k = 1024
        s, t = make_instance(rng, 1 << 24, k, 0.0)
        outcome = HalvingDisjointness(1 << 24, k).run(s, t, seed=0)
        assert outcome.num_messages <= 4 * (k.bit_length() + 4)

    def test_verdict_agreement(self, rng):
        protocol = HalvingDisjointness(1 << 16, 64)
        for seed in range(20):
            overlap = 0.0 if seed % 2 else 0.1
            s, t = make_instance(rng, 1 << 16, 64, overlap)
            outcome = protocol.run(s, t, seed=seed)
            assert outcome.alice_output == outcome.bob_output


class TestDisjointnessViaIntersection:
    def test_decides_correctly(self, rng):
        wrapper = DisjointnessViaIntersection(TreeProtocol(1 << 16, 64))
        s, t = make_instance(rng, 1 << 16, 64, 0.0)
        assert wrapper.run(s, t, seed=0).alice_output is True
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        assert wrapper.run(s, t, seed=1).alice_output is False

    def test_costs_constant_factor_of_disjointness(self, rng):
        # The paper's point: recovering the WHOLE intersection costs only a
        # constant factor more than deciding emptiness.
        s, t = make_instance(rng, 1 << 20, 256, 0.0)
        int_bits = (
            DisjointnessViaIntersection(TreeProtocol(1 << 20, 256))
            .run(s, t, seed=0)
            .transcript.total_bits
        )
        disj_bits = HalvingDisjointness(1 << 20, 256).run(s, t, seed=0).total_bits
        assert int_bits < 12 * disj_bits
