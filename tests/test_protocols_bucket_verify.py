"""Tests for the Section 1 toy protocol (bucket + verify)."""

import math
import random

import pytest

from conftest import make_instance
from repro.comm.errors import ProtocolAborted
from repro.protocols.bucket_verify import BucketVerifyProtocol


class TestCorrectness:
    def test_exact_on_all_overlap_regimes(self, rng, overlap_fraction):
        protocol = BucketVerifyProtocol(1 << 20, 256)
        s, t = make_instance(rng, 1 << 20, 256, overlap_fraction)
        assert protocol.run(s, t, seed=0).correct_for(s, t)

    def test_many_seeds(self, rng):
        protocol = BucketVerifyProtocol(1 << 20, 64)
        failures = 0
        for seed in range(60):
            s, t = make_instance(rng, 1 << 20, 64, 0.5)
            if not protocol.run(s, t, seed=seed).correct_for(s, t):
                failures += 1
        assert failures == 0  # verified protocol: wrongness needs a 1/k^3 event

    def test_identical_singletons(self):
        protocol = BucketVerifyProtocol(1 << 10, 1)
        assert protocol.run({5}, {5}, seed=0).alice_output == frozenset({5})

    def test_empty(self):
        protocol = BucketVerifyProtocol(1 << 10, 8)
        outcome = protocol.run(set(), set(), seed=0)
        assert outcome.alice_output == frozenset()

    def test_both_parties_agree(self, rng):
        protocol = BucketVerifyProtocol(1 << 16, 128)
        for seed in range(20):
            s, t = make_instance(rng, 1 << 16, 128, 0.7)
            outcome = protocol.run(s, t, seed=seed)
            assert outcome.alice_output == outcome.bob_output


class TestCost:
    def test_k_log_log_k_scaling(self):
        # Expected O(k log log k): per-element cost must track ~3 log2 log2 k
        # (the g_i width) rather than log k or log n.
        rng = random.Random(8)
        results = {}
        for k in (64, 256, 1024):
            n = 1 << 24
            s, t = make_instance(rng, n, k, 0.5)
            bits = BucketVerifyProtocol(n, k).run(s, t, seed=0).total_bits
            results[k] = bits / (k * math.log2(max(math.log2(k), 2)))
        values = list(results.values())
        # normalized cost stays within a narrow constant band
        assert max(values) / min(values) < 3.0

    def test_cheaper_than_one_round_hashing_at_scale(self):
        from repro.protocols.one_round import OneRoundHashingProtocol

        rng = random.Random(9)
        n, k = 1 << 24, 1024
        s, t = make_instance(rng, n, k, 0.5)
        toy_bits = BucketVerifyProtocol(n, k).run(s, t, seed=0).total_bits
        one_round_bits = OneRoundHashingProtocol(n, k).run(s, t, seed=0).total_bits
        assert toy_bits < one_round_bits  # k log log k beats k log k

    def test_iterations_expected_small(self, rng):
        # 4 messages per iteration (+ fallback); typical runs settle in
        # <= 3 iterations, i.e. <= 12 messages.
        protocol = BucketVerifyProtocol(1 << 20, 256)
        s, t = make_instance(rng, 1 << 20, 256, 0.5)
        outcome = protocol.run(s, t, seed=0)
        assert outcome.num_messages <= 12


class TestBudgetModes:
    def test_exchange_fallback_is_always_correct(self, rng):
        # Force the fallback by allowing a single iteration: correctness
        # must survive via the explicit exchange.
        protocol = BucketVerifyProtocol(1 << 16, 64, max_iterations=1)
        for seed in range(10):
            s, t = make_instance(rng, 1 << 16, 64, 0.5)
            assert protocol.run(s, t, seed=seed).correct_for(s, t)

    def test_abort_mode_raises(self, rng):
        protocol = BucketVerifyProtocol(
            1 << 16, 64, max_iterations=0, on_budget="abort"
        )
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        with pytest.raises(ProtocolAborted):
            protocol.run(s, t, seed=0)

    def test_invalid_on_budget(self):
        with pytest.raises(ValueError):
            BucketVerifyProtocol(100, 10, on_budget="explode")
