"""Tests for the conformance kit -- and via it, every shipped protocol."""

import pytest

from repro.core.amplify import AmplifiedIntersection
from repro.core.private_model import PrivateCoinIntersection
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.bucket_verify import BucketVerifyProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.sqrt_k import SqrtKProtocol
from repro.protocols.trivial import TrivialExchangeProtocol
from repro.testing import check_intersection_contract

N, K = 1 << 18, 64


class TestShippedProtocolsConform:
    @pytest.mark.parametrize(
        "protocol",
        [
            TrivialExchangeProtocol(N, K),
            OneRoundHashingProtocol(N, K),
            BucketVerifyProtocol(N, K),
            SqrtKProtocol(N, K),
            TreeProtocol(N, K, rounds=2),
            TreeProtocol(N, K),
            AmplifiedIntersection(N, K),
            PrivateCoinIntersection(N, K),
        ],
        ids=lambda p: p.name,
    )
    def test_contract(self, protocol):
        report = check_intersection_contract(protocol, failure_budget=1)
        assert report.passed, str(report)
        assert report.runs == 15

    def test_tree_round_budget_clause(self):
        report = check_intersection_contract(
            TreeProtocol(N, K, rounds=2), max_messages=12, failure_budget=1
        )
        assert report.passed, str(report)


class TestKitDetectsBrokenProtocols:
    class LyingProtocol(TrivialExchangeProtocol):
        """Outputs a superset-violating extra element."""

        name = "lying"

        def run(self, alice_set, bob_set, **kwargs):
            outcome = super().run(alice_set, bob_set, **kwargs)
            poisoned = frozenset(outcome.alice_output | {self.universe_size - 1})
            outcome.alice_output = poisoned
            outcome.bob_output = poisoned
            return outcome

    class FlakyCostProtocol(TrivialExchangeProtocol):
        """Non-replayable accounting."""

        name = "flaky"

        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self._calls = 0

        def run(self, alice_set, bob_set, **kwargs):
            outcome = super().run(alice_set, bob_set, **kwargs)
            self._calls += 1
            if self._calls % 2 == 0:
                outcome.transcript.record_send(
                    "alice", __import__("repro.util.bits", fromlist=["BitString"]).BitString(0, 1)
                )
            return outcome

    def test_catches_agreement_violation(self):
        report = check_intersection_contract(
            self.LyingProtocol(N, K), failure_budget=100
        )
        assert not report.passed
        assert any("Prop 3.9" in violation for violation in report.violations)

    def test_catches_sandwich_violation(self):
        report = check_intersection_contract(
            self.LyingProtocol(N, K),
            failure_budget=100,
            check_agreement_exactness=False,
        )
        assert any("violates" in violation for violation in report.violations)

    def test_catches_nonreplayable_cost(self):
        report = check_intersection_contract(self.FlakyCostProtocol(N, K))
        assert any("replay changed cost" in v for v in report.violations)

    def test_catches_failure_budget_excess(self):
        class AlwaysWrong(TrivialExchangeProtocol):
            name = "wrong"

            def run(self, alice_set, bob_set, **kwargs):
                outcome = super().run(alice_set, bob_set, **kwargs)
                outcome.alice_output = frozenset(alice_set)
                outcome.bob_output = frozenset(alice_set) & frozenset(bob_set)
                return outcome

        report = check_intersection_contract(
            AlwaysWrong(N, K), check_sandwich=False,
            check_agreement_exactness=False,
        )
        # wrong on every instance with a nonempty difference
        assert any("failure budget" in v for v in report.violations)

    def test_report_str(self):
        report = check_intersection_contract(TrivialExchangeProtocol(N, K))
        assert str(report).startswith("PASS")
