"""Unit tests for the batch-kernel layer: dispatch, gating, edge cases.

The value-level guarantees (lane paths == scalar oracles over randomized
inputs) live in ``test_kernels_differential.py``; this module pins the
plumbing -- the numpy gate, the environment kill-switch, the dispatch
thresholds, and the per-kernel edge cases that the protocols rely on.
"""

import random

import pytest

from repro.kernels import (
    M61,
    MIN_LANES,
    SCALAR_ENV_VAR,
    affine_image_batch,
    affine_image_batch_scalar,
    affine_image_segments,
    affine_image_segments_scalar,
    backend_name,
    bucket_assign,
    bucket_assign_scalar,
    equal_mask,
    equal_mask_scalar,
    fingerprint_sweep,
    fingerprint_sweep_segments,
    fingerprint_sweep_segments_scalar,
    mod_batch,
    mod_batch_scalar,
    numpy_available,
    numpy_or_none,
    scalar_only,
    sort_ints,
)
from repro.kernels import backend as backend_module
from repro.protocols.fingerprint import _fingerprint_impl


class TestBackendGate:
    def test_scalar_only_forces_scalar(self):
        with scalar_only():
            assert numpy_or_none() is None
            assert not numpy_available()
            assert backend_name() == "scalar"

    def test_scalar_only_restores_previous_state(self):
        before = backend_module._STATE.force_scalar
        with scalar_only():
            assert backend_module._STATE.force_scalar is True
        assert backend_module._STATE.force_scalar == before

    def test_scalar_only_restores_on_exception(self):
        before = backend_module._STATE.force_scalar
        with pytest.raises(RuntimeError):
            with scalar_only():
                raise RuntimeError("boom")
        assert backend_module._STATE.force_scalar == before

    def test_scalar_only_nests(self):
        with scalar_only():
            with scalar_only():
                assert backend_name() == "scalar"
            # Inner exit must not prematurely re-enable the lane path.
            assert backend_name() == "scalar"

    def test_env_var_read_at_state_init(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV_VAR, "1")
        assert backend_module._State().force_scalar is True
        monkeypatch.delenv(SCALAR_ENV_VAR)
        assert backend_module._State().force_scalar is False

    def test_empty_env_var_does_not_force(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV_VAR, "")
        assert backend_module._State().force_scalar is False

    def test_backend_name_is_valid(self):
        assert backend_name() in ("numpy", "scalar")


class TestAffineImageBatch:
    PRIME = 16777259  # next_prime(2**24)

    def test_matches_per_key_formula(self):
        xs = list(range(300))
        expected = [(5 * x + 3) % 97 % 10 for x in xs]
        assert affine_image_batch(xs, 5, 3, 97, 10) == expected

    def test_scalar_and_dispatched_agree(self):
        xs = [(i * 2654435761) & 0xFFFFFF for i in range(512)]
        dispatched = affine_image_batch(xs, 48271, 11, self.PRIME, 1 << 20)
        with scalar_only():
            forced = affine_image_batch(xs, 48271, 11, self.PRIME, 1 << 20)
        assert dispatched == forced
        assert forced == affine_image_batch_scalar(
            xs, 48271, 11, self.PRIME, 1 << 20
        )

    def test_below_min_lanes_still_exact(self):
        xs = list(range(MIN_LANES - 1))
        assert affine_image_batch(xs, 7, 1, 101, 13) == [
            (7 * x + 1) % 101 % 13 for x in xs
        ]

    def test_empty_input(self):
        assert affine_image_batch([], 5, 3, 97, 10) == []

    def test_preserves_order_and_duplicates(self):
        xs = [9, 3, 9, 3, 9] * 60
        out = affine_image_batch(xs, 5, 3, 97, 10)
        assert out == [(5 * x + 3) % 97 % 10 for x in xs]

    def test_m61_path_exact(self):
        mult = M61 - 12345
        shift = M61 - 7
        xs = [(M61 - 1 - i * 104729) % M61 for i in range(400)]
        expected = [(mult * x + shift) % M61 % 1000 for x in xs]
        assert affine_image_batch(xs, mult, shift, M61, 1000) == expected

    def test_huge_prime_falls_back_exactly(self):
        prime = (1 << 80) + 13  # beyond any lane-safe route
        mult = (1 << 70) + 3
        xs = list(range(256))
        expected = [(mult * x + 5) % prime % 997 for x in xs]
        assert affine_image_batch(xs, mult, 5, prime, 997) == expected

    def test_keys_beyond_uint64_fall_back_exactly(self):
        xs = [(1 << 70) + i for i in range(200)]
        expected = [(3 * x + 1) % M61 % 50 for x in xs]
        assert affine_image_batch(xs, 3, 1, M61, 50) == expected

    def test_accepts_generators(self):
        assert affine_image_batch((x for x in range(200)), 5, 3, 97, 10) == [
            (5 * x + 3) % 97 % 10 for x in range(200)
        ]


class TestAffineImageSegments:
    """The cross-session coalescing kernel: many per-segment parameter
    tuples, one dispatch, bit-identical to per-segment scalar sweeps."""

    PRIME_24 = 16777259  # next_prime(2**24)
    PRIME_32 = 4294967311  # next_prime(2**32)

    def _mixed_segments(self):
        import random

        rng = random.Random(5)
        segments = []
        for _ in range(40):
            regime = rng.randrange(4)
            if regime == 0:  # direct: small mult, 24-bit keys
                prime, mult = self.PRIME_24, rng.randrange(1, 1 << 16)
                xs = [rng.randrange(1 << 24) for _ in range(rng.randrange(0, 90))]
            elif regime == 1:  # split16: 32-bit universe, random full mult
                prime = self.PRIME_32
                mult = rng.randrange(1, prime)
                xs = [rng.randrange(1 << 32) for _ in range(rng.randrange(0, 90))]
            elif regime == 2:  # m61
                prime = M61
                mult = rng.randrange(1, M61)
                xs = [rng.randrange(1 << 50) for _ in range(rng.randrange(0, 90))]
            else:  # beyond every lane route: scalar fallback
                prime = (1 << 70) + 9
                mult = rng.randrange(1, 1 << 68)
                xs = [rng.randrange(1 << 62) for _ in range(rng.randrange(0, 40))]
            shift = rng.randrange(prime)
            segments.append((xs, mult, shift, prime, rng.randrange(2, 5000)))
        return segments

    def test_matches_scalar_twin_across_routes(self):
        segments = self._mixed_segments()
        assert affine_image_segments(segments) == affine_image_segments_scalar(
            segments
        )

    def test_matches_per_key_formula(self):
        segments = self._mixed_segments()
        out = affine_image_segments(segments)
        for (xs, mult, shift, prime, range_size), images in zip(segments, out):
            assert images == [(mult * x + shift) % prime % range_size for x in xs]

    def test_split16_regime_exact(self):
        # The pairwise-hash family over a word-sized universe: prime just
        # above 2**32 and a random full-range mult, so mult * max_x
        # overflows the direct route and prime != M61 -- only the split-16
        # limb route can take it off the scalar path.  The coalescing
        # server's whole speedup on 2**32-universe traffic rides on this.
        import random

        rng = random.Random(11)
        prime = self.PRIME_32
        segments = []
        for _ in range(32):
            mult = rng.randrange(prime // 2, prime)  # guaranteed overflow
            xs = [rng.randrange(1 << 32) for _ in range(64)]
            segments.append((xs, mult, rng.randrange(prime), prime, 3083))
        assert affine_image_segments(segments) == affine_image_segments_scalar(
            segments
        )

    def test_empty_and_edge_segments(self):
        segments = [
            ([], 5, 3, 97, 10),
            ([0], 5, 3, 97, 10),
            ([96] * 200, 5, 3, 97, 10),
            ([-1, 5], 7, 1, 101, 13),  # negative key: scalar fallback
        ]
        out = affine_image_segments(segments)
        assert out == affine_image_segments_scalar(segments)
        assert out[0] == []

    def test_scalar_only_bit_identical(self):
        segments = self._mixed_segments()
        dispatched = affine_image_segments(segments)
        with scalar_only():
            forced = affine_image_segments(segments)
        assert dispatched == forced


class TestOtherKernels:
    def test_bucket_assign_is_affine(self):
        xs = list(range(500))
        assert bucket_assign(xs, 7, 5, 1009, 32) == affine_image_batch(
            xs, 7, 5, 1009, 32
        )
        assert bucket_assign_scalar(xs, 7, 5, 1009, 32) == [
            (7 * x + 5) % 1009 % 32 for x in xs
        ]

    def test_mod_batch_exact(self):
        xs = [(i * 48271) & 0xFFFFFFFF for i in range(400)]
        assert mod_batch(xs, 65521) == [x % 65521 for x in xs]
        assert mod_batch(xs, 65521) == mod_batch_scalar(xs, 65521)

    def test_mod_batch_huge_modulus(self):
        xs = list(range(300))
        modulus = (1 << 70) + 9  # identity on these keys, scalar route
        assert mod_batch(xs, modulus) == xs

    def test_equal_mask_basic(self):
        left = list(range(300))
        right = [x if x % 3 else x + 1 for x in left]
        expected = [int(a == b) for a, b in zip(left, right)]
        assert equal_mask(left, right) == expected
        assert equal_mask_scalar(left, right) == expected

    def test_equal_mask_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            equal_mask([1, 2, 3], [1, 2])

    def test_equal_mask_bigint_fingerprints(self):
        # Fingerprints wider than 64 bits must fall back, not truncate.
        left = [(1 << 100) + i for i in range(200)]
        right = [(1 << 100) + (i if i % 2 else i + 1) for i in range(200)]
        assert equal_mask(left, right) == [
            int(a == b) for a, b in zip(left, right)
        ]

    def test_sort_ints(self):
        xs = [(i * 2654435761) & 0xFFFFF for i in range(513)]
        assert sort_ints(xs) == sorted(xs)
        assert sort_ints([]) == []
        assert sort_ints([5]) == [5]

    def test_sort_ints_bigints(self):
        xs = [(1 << 90) - i for i in range(200)]
        assert sort_ints(xs) == sorted(xs)


class TestFingerprintSweep:
    def test_matches_single_value_impl(self):
        salt = bytes(range(32))
        payloads = [f"payload-{i}".encode() for i in range(64)]
        for width in (1, 8, 13, 64, 256):
            assert fingerprint_sweep(salt, width, payloads) == [
                _fingerprint_impl(salt, width, data) for data in payloads
            ]

    def test_multi_digest_widths(self):
        # width > 256 exercises the counter loop (several SHA blocks).
        salt = b"\x07" * 32
        payloads = [b"a", b"bb", b"ccc"]
        for width in (257, 300, 512, 1000):
            assert fingerprint_sweep(salt, width, payloads) == [
                _fingerprint_impl(salt, width, data) for data in payloads
            ]

    def test_empty_sweep(self):
        assert fingerprint_sweep(b"\x00" * 32, 16, []) == []


class TestFingerprintSweepSegments:
    """The pooled variant the round-barrier driver dispatches per tick."""

    @staticmethod
    def _mixed_segments(seed: int):
        rng = random.Random(seed)
        segments = []
        # One segment per route regime: single-digest widths, the 256-bit
        # boundary, and counter-extended widths beyond one SHA block.
        for width in (1, 8, 64, 256, 257, 300, 1000):
            salt = bytes(rng.randrange(256) for _ in range(32))
            payloads = [
                bytes(rng.randrange(256) for _ in range(rng.randrange(0, 24)))
                for _ in range(rng.randrange(1, 12))
            ]
            segments.append((salt, width, payloads))
        return segments

    def test_matches_scalar_twin_and_impl(self):
        segments = self._mixed_segments(3)
        pooled = fingerprint_sweep_segments(segments)
        assert pooled == fingerprint_sweep_segments_scalar(segments)
        assert pooled == [
            [_fingerprint_impl(salt, width, data) for data in payloads]
            for salt, width, payloads in segments
        ]

    def test_empty_segment_list(self):
        assert fingerprint_sweep_segments([]) == []
        assert fingerprint_sweep_segments_scalar([]) == []

    def test_empty_payload_segments_keep_positions(self):
        salt = bytes(range(32))
        segments = [
            (salt, 16, []),
            (salt, 16, [b"x"]),
            (salt, 300, []),
        ]
        pooled = fingerprint_sweep_segments(segments)
        assert pooled == fingerprint_sweep_segments_scalar(segments)
        assert pooled[0] == [] and pooled[2] == []
        assert pooled[1] == [_fingerprint_impl(salt, 16, b"x")]

    def test_segment_order_preserved_under_shared_salt(self):
        # Same salt and width across segments: pooling must still return
        # each segment's values in its own slot, in payload order.
        salt = b"\x21" * 32
        segments = [
            (salt, 64, [b"a", b"b"]),
            (salt, 64, [b"b", b"a"]),
        ]
        first, second = fingerprint_sweep_segments(segments)
        assert first == list(reversed(second))
        assert first == [
            _fingerprint_impl(salt, 64, b"a"),
            _fingerprint_impl(salt, 64, b"b"),
        ]
