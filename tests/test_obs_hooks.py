"""Hook coverage: every instrumented layer emits its events under capture.

These tests run real protocols inside ``obs.capture()`` and assert the
event stream carries what the taxonomy promises -- and, just as load-
bearing, that tracing changes no protocol output.
"""

import random

import pytest

from conftest import make_instance
from repro import obs
from repro.obs import metrics
from repro.obs.schema import validate_trace_events


@pytest.fixture(autouse=True)
def fresh_metrics():
    metrics.reset_metrics()
    yield
    metrics.reset_metrics()


def events_of(sink, event_type):
    return [e for e in sink.events() if e["type"] == event_type]


class TestProtocolAndEngineHooks:
    def test_tree_protocol_emits_bracket_and_messages(self, rng):
        from repro.core.tree_protocol import TreeProtocol

        S, T = make_instance(rng, 1 << 18, 128, 0.4)
        protocol = TreeProtocol(1 << 18, 128, rounds=2)
        with obs.capture() as sink:
            outcome = protocol.run(S, T, seed=3)
        assert outcome.alice_output == S & T
        assert validate_trace_events(sink.events()) == []

        (start,) = events_of(sink, "protocol.start")
        assert start["protocol"] == "verification-tree"
        assert start["max_set_size"] == 128
        assert start["rounds"] == 2
        (finish,) = events_of(sink, "protocol.finish")
        assert finish["total_bits"] == outcome.total_bits
        assert finish["num_messages"] == outcome.num_messages
        # Message events reconstruct the exact bit total.
        message_bits = sum(
            e["bits"]
            for e in sink.events()
            if e["type"] in ("message.open", "message.merge")
        )
        assert message_bits == outcome.total_bits
        assert len(events_of(sink, "message.open")) == outcome.num_messages

    def test_engine_bracket_reports_run_relative_totals(self):
        from repro.comm.engine import Recv, Send, run_two_party
        from repro.util.bits import BitString

        def alice(ctx):
            yield Send(BitString(3, 4))
            (yield Recv())
            return None

        def bob(ctx):
            (yield Recv())
            yield Send(BitString(1, 2))
            return None

        with obs.capture() as sink:
            run_two_party(alice, bob, alice_input=None, bob_input=None)
        (finish,) = events_of(sink, "engine.finish")
        assert finish["total_bits"] == 6
        assert finish["num_messages"] == 2
        assert metrics.histogram("engine.bits_per_round").count == 2

    def test_tracing_changes_no_output(self, rng):
        from repro.core.tree_protocol import TreeProtocol

        S, T = make_instance(rng, 1 << 16, 64, 0.5)
        protocol = TreeProtocol(1 << 16, 64, rounds=2)
        plain = protocol.run(S, T, seed=7)
        with obs.capture():
            traced = protocol.run(S, T, seed=7)
        assert traced.alice_output == plain.alice_output
        assert traced.total_bits == plain.total_bits
        assert traced.num_messages == plain.num_messages


class TestStageAndBucketHooks:
    def test_tree_stages_emit_phase_and_verify_events(self, rng):
        from repro.core.tree_protocol import TreeProtocol

        S, T = make_instance(rng, 1 << 18, 128, 0.4)
        with obs.capture() as sink:
            TreeProtocol(1 << 18, 128, rounds=2).run(S, T, seed=1)
        phases = events_of(sink, "bucket.phase")
        assert [e["phase"] for e in phases] == ["stage0", "stage1"]
        for event in phases:
            assert event["protocol"] == "verification-tree"
            assert event["equality_bits"] >= 0
        verifies = events_of(sink, "verify.outcome")
        assert len(verifies) == 2
        assert all(v["passed"] + v["failed"] > 0 for v in verifies)

    def test_bucket_verify_emits_iterations(self, rng):
        from repro.protocols.bucket_verify import BucketVerifyProtocol

        S, T = make_instance(rng, 1 << 16, 64, 0.5)
        protocol = BucketVerifyProtocol(1 << 16, 64)
        with obs.capture() as sink:
            outcome = protocol.run(S, T, seed=2)
        assert outcome.alice_output == S & T
        phases = events_of(sink, "bucket.phase")
        assert phases and phases[0]["phase"] == "iteration0"
        assert phases[0]["active"] == protocol.num_buckets
        # Settled buckets accumulate to the full bucket count.
        assert sum(e["settled"] for e in phases) <= protocol.num_buckets

    def test_basic_intersection_reports_filter_outcome(self, rng):
        from repro.protocols.basic_intersection import BasicIntersectionProtocol

        S, T = make_instance(rng, 1 << 14, 32, 0.5)
        with obs.capture() as sink:
            outcome = BasicIntersectionProtocol(1 << 14, 32).run(S, T, seed=4)
        (event,) = events_of(sink, "verify.outcome")
        assert event["context"] == "filter/alice"
        assert event["kept"] == len(outcome.alice_output)


class TestMultipartyHooks:
    def test_round_boundaries_sum_to_finish_total(self, rng):
        from repro.multiparty.coordinator import CoordinatorIntersection
        from repro.workloads import make_multiparty_instance

        sets = make_multiparty_instance(rng, 1 << 16, 48, 4, 12)
        with obs.capture() as sink:
            outcome = CoordinatorIntersection(1 << 16, 48).run(sets, seed=6)
        (start,) = events_of(sink, "multiparty.start")
        assert start["players"] == 4
        (finish,) = events_of(sink, "multiparty.finish")
        boundaries = events_of(sink, "round.boundary")
        assert finish["rounds"] == outcome.rounds == len(boundaries)
        assert finish["total_bits"] == outcome.total_bits
        assert sum(e["bits"] for e in boundaries) == outcome.total_bits
        assert metrics.histogram("multiparty.rounds_per_run").count == 1


class TestKernelRouteHooks:
    def test_route_counters_accumulate_while_active(self):
        from repro.kernels.batch import affine_image_batch

        with obs.capture() as sink:
            affine_image_batch(list(range(200)), 3, 1, 997, 256)
            affine_image_batch(list(range(200)), 5, 2, 997, 256)
        routes = [
            name
            for name in metrics.metric_names()
            if name.startswith("kernels.route.affine_image_batch.")
        ]
        (route_name,) = routes
        assert metrics.counter(route_name).value == 2
        # The event stream gets the first sighting only (counters carry the
        # rates); with a fresh-enough process this may be zero if an earlier
        # test already sighted the route, so only the counter is asserted.
        assert len(events_of(sink, "kernel.route")) <= 1

    def test_disabled_path_records_nothing(self):
        from repro.kernels.batch import affine_image_batch
        from repro.obs.state import STATE

        assert not STATE.active or True  # document intent; no-op if CI traces
        if STATE.active:
            pytest.skip("tracing enabled via environment")
        affine_image_batch(list(range(200)), 3, 1, 997, 256)
        assert metrics.metric_names() == []
