"""Tests for the metrics registry."""

import math

import pytest

from repro.obs import metrics


@pytest.fixture(autouse=True)
def fresh_registry():
    metrics.reset_metrics()
    yield
    metrics.reset_metrics()


class TestCounter:
    def test_get_or_create_and_inc(self):
        metrics.counter("x").inc()
        metrics.counter("x").inc(3)
        assert metrics.counter("x").value == 4
        assert metrics.counter("x").as_dict() == {"kind": "counter", "value": 4}

    def test_kind_clash_raises(self):
        metrics.counter("x")
        with pytest.raises(TypeError):
            metrics.histogram("x")
        metrics.histogram("y")
        with pytest.raises(TypeError):
            metrics.counter("y")


class TestHistogram:
    def test_moments(self):
        h = metrics.histogram("bits")
        for value in (10, 20, 60):
            h.observe(value)
        assert h.count == 3
        assert h.total == 90
        assert h.min == 10 and h.max == 60
        assert h.mean == pytest.approx(30.0)

    def test_empty_histogram_renders_without_garbage(self):
        h = metrics.histogram("bits")
        d = h.as_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None and d["mean"] is None
        assert math.isnan(h.mean)


class TestRegistry:
    def test_snapshot_is_sorted_and_json_ready(self):
        metrics.counter("b").inc()
        metrics.histogram("a").observe(1)
        snap = metrics.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"]["value"] == 1

    def test_snapshot_can_merge_hotcache_stats(self):
        snap = metrics.snapshot(include_hotcache=True)
        # Hot caches register at import time; every merged entry is
        # namespaced and cache-kinded.
        hotcache_entries = {
            k: v for k, v in snap.items() if k.startswith("hotcache.")
        }
        for entry in hotcache_entries.values():
            assert entry["kind"] == "cache"
            assert "hits" in entry and "misses" in entry

    def test_reset_clears_names(self):
        metrics.counter("x")
        assert metrics.metric_names() == ["x"]
        metrics.reset_metrics()
        assert metrics.metric_names() == []
