"""Tests for the Fact 2.1 reduction (EQ^n_k via INT_k)."""

import random

import pytest

from repro.core.tree_protocol import TreeProtocol
from repro.reductions.eq_to_int import EqualityViaIntersection
from repro.util.iterlog import log_star


def make_strings(rng, k, n_bits, unequal_indices):
    xs = [rng.getrandbits(n_bits) for _ in range(k)]
    ys = list(xs)
    for index in unequal_indices:
        ys[index] ^= 1 + rng.getrandbits(4)
    return xs, ys, tuple(i not in set(unequal_indices) for i in range(k))


class TestCorrectness:
    def test_mixed_instance(self):
        rng = random.Random(200)
        reduction = EqualityViaIntersection(32, 64)
        xs, ys, truth = make_strings(rng, 32, 64, [0, 5, 31])
        outcome = reduction.run(xs, ys, seed=0)
        assert outcome.alice_output == truth
        assert outcome.bob_output == truth

    def test_all_equal(self):
        rng = random.Random(201)
        reduction = EqualityViaIntersection(16, 32)
        xs, ys, truth = make_strings(rng, 16, 32, [])
        assert reduction.run(xs, ys, seed=0).alice_output == truth

    def test_all_unequal(self):
        rng = random.Random(202)
        reduction = EqualityViaIntersection(16, 32)
        xs, ys, truth = make_strings(rng, 16, 32, list(range(16)))
        assert reduction.run(xs, ys, seed=0).alice_output == truth

    def test_long_strings(self):
        # n = 512-bit strings: the universe is k * 2^512; hashing inside the
        # protocol must absorb it without blowup.
        rng = random.Random(203)
        reduction = EqualityViaIntersection(8, 512)
        xs, ys, truth = make_strings(rng, 8, 512, [2])
        assert reduction.run(xs, ys, seed=0).alice_output == truth

    def test_many_seeds(self):
        rng = random.Random(204)
        reduction = EqualityViaIntersection(24, 48)
        failures = 0
        for seed in range(30):
            xs, ys, truth = make_strings(rng, 24, 48, [1, 7])
            if reduction.run(xs, ys, seed=seed).alice_output != truth:
                failures += 1
        assert failures <= 1

    def test_validation(self):
        reduction = EqualityViaIntersection(4, 8)
        with pytest.raises(ValueError):
            reduction.run([1, 2, 3], [1, 2, 3, 4], seed=0)
        with pytest.raises(ValueError):
            reduction.run([256, 0, 0, 0], [0, 0, 0, 0], seed=0)  # > 2^8


class TestRoundImprovement:
    def test_rounds_are_log_star_not_sqrt(self):
        # The paper's observation: the reduction + tree protocol solves
        # EQ^n_k in O(log* k) rounds, improving FKNN's O(sqrt(k)).
        rng = random.Random(205)
        k = 1024
        reduction = EqualityViaIntersection(k, 32)
        xs, ys, _ = make_strings(rng, k, 32, [3, 9])
        outcome = reduction.run(xs, ys, seed=0)
        assert outcome.num_messages <= 6 * log_star(k)  # = 24
        assert outcome.num_messages < k**0.5  # far below FKNN's sqrt(k) pace

    def test_linear_communication(self):
        rng = random.Random(206)
        per_k = []
        for k in (32, 128, 512):
            reduction = EqualityViaIntersection(k, 40)
            xs, ys, _ = make_strings(rng, k, 40, list(range(0, k, 4)))
            per_k.append(reduction.run(xs, ys, seed=0).total_bits / k)
        assert max(per_k) < 64
        assert max(per_k) / min(per_k) < 2.5

    def test_custom_protocol_factory(self):
        rng = random.Random(207)
        reduction = EqualityViaIntersection(
            16,
            32,
            protocol_factory=lambda n, k: TreeProtocol(n, k, rounds=2),
        )
        xs, ys, truth = make_strings(rng, 16, 32, [4])
        assert reduction.run(xs, ys, seed=0).alice_output == truth
