"""Smoke tests: every example script must run clean and say what it promised.

Examples are documentation; a broken example is a broken promise, so the
suite executes each one in a subprocess and checks a characteristic line of
its output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTATIONS = {
    "quickstart.py": ["intersection ok : True", "savings"],
    "distributed_join.py": ["matched rows", "total savings"],
    "similarity_suite.py": ["exact Jaccard", "1-rarity / 2-rarity"],
    "multiparty_aggregation.py": [
        "Corollary 4.1",
        "Corollary 4.2",
        "cut the heaviest server's load",
    ],
    "tradeoff_explorer.py": ["log* k", "baselines:"],
    "exact_vs_sketch.py": ["EXACT set", "scalar estimate"],
    "deduplication.py": ["pairwise duplicate counts", "globally replicated"],
}


def test_every_example_has_an_expectation():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTATIONS), (
        "examples and EXPECTATIONS out of sync; update tests/test_examples.py"
    )


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    for marker in EXPECTATIONS[script]:
        assert marker in completed.stdout, (
            f"{script} output missing {marker!r}:\n{completed.stdout[-2000:]}"
        )
