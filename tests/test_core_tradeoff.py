"""Tests for protocol selection along the tradeoff curve."""

import pytest

from repro.core.tradeoff import (
    communication_bound,
    optimal_rounds,
    select_protocol,
    trivial_bound,
)
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.trivial import TrivialExchangeProtocol
from repro.util.iterlog import log_star


class TestOptimalRounds:
    def test_matches_log_star(self):
        assert optimal_rounds(65536) == log_star(65536) == 4
        assert optimal_rounds(256) == 4
        assert optimal_rounds(4) == 2

    def test_at_least_one(self):
        assert optimal_rounds(1) == 1


class TestCommunicationBound:
    def test_r_zero_is_k_squared_shape(self):
        assert communication_bound(100, 0) == 100 * 100

    def test_r_one_is_k_log_k(self):
        assert communication_bound(1024, 1) == 1024 * 10

    def test_bottoms_out_at_k(self):
        k = 1024
        assert communication_bound(k, log_star(k)) == pytest.approx(k, rel=0.7)
        assert communication_bound(k, 10) == k  # clamp

    def test_monotone_decreasing_in_r(self):
        k = 4096
        values = [communication_bound(k, r) for r in range(6)]
        assert values == sorted(values, reverse=True)


class TestTrivialBound:
    def test_k_log_n_over_k_shape(self):
        sparse = trivial_bound(1 << 20, 64)
        dense = trivial_bound(1 << 8, 64)
        assert sparse > dense

    def test_scales_near_linearly_in_k(self):
        # Doubling k doubles the element count but shaves one bit off
        # log(n/k): the ratio sits just below 2.
        ratio = trivial_bound(1 << 20, 128) / trivial_bound(1 << 20, 64)
        assert 1.5 < ratio < 2.0


class TestSelectProtocol:
    def test_default_is_tree_at_log_star(self):
        protocol = select_protocol(1 << 20, 256)
        assert isinstance(protocol, TreeProtocol)
        assert protocol.rounds == 4

    def test_rounds_one_is_one_round_hashing(self):
        protocol = select_protocol(1 << 20, 256, rounds=1)
        assert isinstance(protocol, OneRoundHashingProtocol)

    def test_deterministic_flag(self):
        protocol = select_protocol(1 << 20, 256, deterministic=True)
        assert isinstance(protocol, TrivialExchangeProtocol)

    def test_rounds_clamped_to_log_star(self):
        protocol = select_protocol(1 << 20, 256, rounds=50)
        assert isinstance(protocol, TreeProtocol)
        assert protocol.rounds == 4

    def test_intermediate_rounds(self):
        protocol = select_protocol(1 << 20, 256, rounds=2)
        assert isinstance(protocol, TreeProtocol)
        assert protocol.rounds == 2

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            select_protocol(1 << 20, 256, rounds=0)

    def test_selected_protocols_all_work(self, rng):
        from conftest import make_instance

        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        for kwargs in ({}, {"rounds": 1}, {"rounds": 2}, {"deterministic": True}):
            protocol = select_protocol(1 << 16, 64, **kwargs)
            assert protocol.run(s, t, seed=0).correct_for(s, t)
