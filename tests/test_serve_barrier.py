"""Bit-identity tests for the round-barrier lockstep driver.

The contract under test: :func:`tree_batch_results` is field-for-field
identical to ``compute_intersection(...)`` on the same arguments for every
multi-round shape, chunk boundaries and lane count never change any lane's
coins or transcript, and the coalescer's group keying never pools
different ``(n, k, rounds)`` shapes into one dispatch.
"""

import asyncio
import random

import pytest

from conftest import make_instance
from repro.core.api import compute_intersection
from repro.core.tradeoff import optimal_rounds
from repro.perf.cache import hot_caches_disabled
from repro.serve import BatchCoalescer, SessionRegistry
from repro.serve.barrier import (
    TreeBatchStats,
    tree_batch_results,
    tree_protocol_rounds,
)
from repro.serve.coalescer import PendingOp, run_scalar_operation


def _requests(seed, universe, k, rounds, count, overlaps=(0.0, 0.5, 1.0)):
    rng = random.Random(seed)
    requests = []
    for trial in range(count):
        s, t = make_instance(rng, universe, k, overlaps[trial % len(overlaps)])
        requests.append((s, t, rng.randrange(1 << 60), rounds))
    return requests


def _assert_identical(requests, results, universe, k):
    for (s, t, op_seed, rounds), result in zip(requests, results):
        engine = compute_intersection(
            s, t, universe_size=universe, max_set_size=k,
            rounds=rounds, seed=op_seed,
        )
        assert result.intersection == engine.intersection
        assert result.bits == engine.bits
        assert result.messages == engine.messages
        assert result.protocol == engine.protocol
        assert result.rounds_parameter == engine.rounds_parameter
        assert result.parties_agree == engine.parties_agree


class TestTreeBatchExecutor:
    @pytest.mark.parametrize(
        "universe,k,rounds",
        [(1 << 16, 16, 2), (1 << 20, 64, 2), (1 << 24, 64, 3)],
    )
    def test_identical_to_engine_path(self, universe, k, rounds):
        clamped = tree_protocol_rounds(k, rounds)
        requests = _requests(rounds, universe, k, rounds, 6)
        results = tree_batch_results(universe, k, clamped, requests)
        _assert_identical(requests, results, universe, k)

    def test_identical_at_optimal_rounds(self):
        universe, k = 1 << 20, 64
        rounds = optimal_rounds(k)
        requests = _requests(9, universe, k, rounds, 4)
        results = tree_batch_results(
            universe, k, tree_protocol_rounds(k, None), requests
        )
        _assert_identical(requests, results, universe, k)

    def test_empty_and_tiny_sets(self):
        universe, k = 1 << 16, 16
        requests = [
            (frozenset(), frozenset(), 5, 2),
            (frozenset({3}), frozenset(), 6, 2),
            (frozenset({1, 2}), frozenset({2, 9}), 7, 2),
        ]
        results = tree_batch_results(universe, k, 2, requests)
        _assert_identical(requests, results, universe, k)

    def test_chunk_boundaries_do_not_change_results(self):
        universe, k = 1 << 20, 64
        requests = _requests(4, universe, k, 2, 9)
        whole = tree_batch_results(universe, k, 2, requests)
        chunked = []
        for size in (1, 3, 5):
            chunked_results = []
            for start in range(0, len(requests), size):
                chunked_results.extend(
                    tree_batch_results(
                        universe, k, 2, requests[start : start + size]
                    )
                )
            chunked.append(chunked_results)
        for other in chunked:
            assert other == whole

    def test_scalar_oracle_path_identical(self):
        # With the hot caches disabled the fingerprint sweeps park and go
        # through the pooled fingerprint_sweep_segments dispatch; results
        # must not change by a bit.
        universe, k = 1 << 20, 64
        requests = _requests(11, universe, k, 2, 4)
        warm = tree_batch_results(universe, k, 2, requests)
        with hot_caches_disabled():
            cold_stats = TreeBatchStats()
            cold = tree_batch_results(
                universe, k, 2, requests, stats=cold_stats
            )
        assert cold == warm
        assert cold_stats.fingerprint_segments > 0

    def test_rejects_one_round_shape(self):
        with pytest.raises(ValueError):
            tree_batch_results(1 << 16, 16, 1, [])

    def test_stats_account_pooled_dispatches(self):
        universe, k = 1 << 20, 64
        stats = TreeBatchStats()
        requests = _requests(2, universe, k, 2, 6)
        tree_batch_results(universe, k, 2, requests, stats=stats)
        assert stats.barriers > 0
        assert stats.affine_segments > 0
        # The bucket sweep alone contributes |S| + |T| lanes per lane pair.
        assert stats.affine_lanes >= sum(
            len(s) + len(t) for s, t, _, _ in requests
        )
        assert stats.fingerprint_values > 0

    def test_shared_protocol_instance_identical(self):
        from repro.core.tree_protocol import TreeProtocol

        universe, k = 1 << 20, 64
        requests = _requests(6, universe, k, 2, 4)
        fresh = tree_batch_results(universe, k, 2, requests)
        shared = TreeProtocol(universe, k, rounds=2)
        reused = tree_batch_results(
            universe, k, 2, requests, protocol=shared
        )
        reused_again = tree_batch_results(
            universe, k, 2, requests, protocol=shared
        )
        assert fresh == reused == reused_again


def _drive(registry, ops, *, coalesce):
    """Submit ``ops`` (key, kind, s, t) in one tick and await all."""

    async def scenario():
        coalescer = BatchCoalescer(registry, coalesce=coalesce, tick_s=0.0)
        await coalescer.start()
        loop = asyncio.get_running_loop()
        futures = []
        for key, kind, s, t in ops:
            future = loop.create_future()
            futures.append(future)
            coalescer.submit(
                PendingOp(
                    entry=registry.get(key), kind=kind,
                    alice_set=s, bob_set=t, future=future,
                )
            )
        values = [await future for future in futures]
        await coalescer.stop()
        return values, coalescer.stats

    return asyncio.run(scenario())


class TestHeterogeneousGroupKeying:
    """Satellite contract: mixed shapes in one tick never cross-pool."""

    SHAPES = (
        # (key, universe, k, rounds) -- three distinct groups plus a
        # one-round session in the same tick.
        ("tree-a", 1 << 20, 64, 2),
        ("tree-b", 1 << 24, 64, 2),   # different n
        ("tree-c", 1 << 20, 16, 2),   # different k
        ("tree-d", 1 << 20, 64, 3),   # different rounds
        ("one", 1 << 20, 64, 1),      # one-round executor's shape
    )

    def _open_all(self, seed=0):
        registry = SessionRegistry(seed)
        for key, universe, k, rounds in self.SHAPES:
            registry.open(
                key, universe_size=universe, max_set_size=k, rounds=rounds
            )
        return registry

    def _schedule(self, seed, ops_per_session=3):
        rng = random.Random(seed)
        ops = []
        for _ in range(ops_per_session):
            for key, universe, k, _rounds in self.SHAPES:
                s, t = make_instance(rng, universe, k, 0.5)
                ops.append((key, rng.choice(["size", "intersect"]), s, t))
        return ops

    def test_no_cross_group_pooling(self):
        registry = self._open_all()
        ops = self._schedule(3)
        _, stats = _drive(registry, ops, coalesce=True)
        labels = set(stats.group_sizes)
        # Four distinct group labels: each (n, k, r) tree shape its own,
        # plus the one-round group -- never a merged label.
        assert labels == {
            "tree/n=1048576/k=64/r=2",
            "tree/n=16777216/k=64/r=2",
            "tree/n=1048576/k=16/r=2",
            "tree/n=1048576/k=64/r=3",
            "one-round/n=1048576/k=64",
        }
        # Every group had >= 2 lanes in the tick, so everything coalesced.
        assert stats.scalar_ops == 0
        assert stats.coalesced_ops == len(ops)

    def test_histories_bit_identical_to_scalar(self):
        batched = self._open_all()
        ops = self._schedule(5)
        _drive(batched, ops, coalesce=True)

        serial = self._open_all()
        for key, kind, s, t in ops:
            run_scalar_operation(serial.get(key), kind, s, t)

        for key, _, _, _ in self.SHAPES:
            assert (
                batched.get(key).session.stats().history
                == serial.get(key).session.stats().history
            )
        assert batched.fingerprint() == serial.fingerprint()

    def test_lone_lane_takes_scalar_path(self):
        registry = self._open_all()
        rng = random.Random(8)
        s, t = make_instance(rng, 1 << 20, 64, 0.5)
        _, stats = _drive(
            registry, [("tree-a", "size", s, t)], coalesce=True
        )
        assert stats.scalar_ops == 1
        assert stats.coalesced_ops == 0
