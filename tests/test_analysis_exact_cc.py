"""Tests for the exact deterministic communication-complexity engine."""

import pytest

from repro.analysis.exact_cc import (
    all_subsets,
    disjointness_matrix,
    equality_matrix,
    exact_deterministic_cc,
    fooling_set_lower_bound,
    greater_than_matrix,
    intersection_matrix,
    log_rank_lower_bound,
)


class TestTextbookValues:
    def test_constant_function_is_free(self):
        assert exact_deterministic_cc([[1, 1], [1, 1]]) == 0

    def test_single_row_needs_only_bob(self):
        # f depends only on y and is binary: Bob announces the value, 1 bit.
        assert exact_deterministic_cc([[0, 1, 0, 1]]) == 1

    def test_equality_on_m_strings(self):
        # D(EQ over [m]) = ceil(log2 m) + 1: identify x, then 1 verdict bit.
        assert exact_deterministic_cc(equality_matrix(2)) == 2
        assert exact_deterministic_cc(equality_matrix(4)) == 3
        # EQ on 3 strings still needs 2 bits to identify + 1 to answer
        assert exact_deterministic_cc(equality_matrix(3)) == 3

    def test_greater_than(self):
        assert exact_deterministic_cc(greater_than_matrix(2)) == 2
        assert exact_deterministic_cc(greater_than_matrix(4)) == 3

    def test_disjointness_tiny(self):
        matrix, subsets = disjointness_matrix(2, 2)
        assert len(subsets) == 4  # {}, {0}, {1}, {0,1}
        cc = exact_deterministic_cc(matrix)
        # identify Alice's subset (2 bits) + verdict (1 bit) is an upper
        # bound; the fooling set {(S, complement(S))} forces ~n + 1
        assert 3 <= cc <= 3

    def test_xor_needs_two_bits(self):
        xor = [[0, 1], [1, 0]]
        assert exact_deterministic_cc(xor) == 2


class TestIntersectionAsRelation:
    def test_int_matrix_shape(self):
        matrix, subsets = intersection_matrix(2, 1)
        assert len(subsets) == 3  # {}, {0}, {1}
        assert matrix[1][1] == frozenset({0})
        assert matrix[1][2] == frozenset()

    def test_int_harder_than_disj(self):
        # Recovering the set requires at least deciding emptiness.
        disj, _ = disjointness_matrix(2, 2)
        intersection, _ = intersection_matrix(2, 2)
        assert exact_deterministic_cc(intersection) >= exact_deterministic_cc(
            disj
        )

    def test_trivial_protocol_upper_bounds_exact_cc(self):
        # D(INT) <= cost of the explicit exchange: our gap-coded trivial
        # protocol on the worst small instance must be >= the exact optimum.
        from repro.protocols.trivial import TrivialExchangeProtocol

        intersection, subsets = intersection_matrix(3, 3)
        exact = exact_deterministic_cc(intersection)
        protocol = TrivialExchangeProtocol(3, 3)
        worst = max(
            protocol.run(s, t, seed=0).total_bits
            for s in subsets
            for t in subsets
        )
        assert worst >= exact

    def test_int_exact_value_small(self):
        # n = 2, k = 2: Alice's set is one of 4; identifying it exactly
        # (2 bits) lets Bob output, +2 bits back for Alice.  The optimum
        # found by exhaustive search must be between DISJ's and 2*log|X|.
        intersection, subsets = intersection_matrix(2, 2)
        cc = exact_deterministic_cc(intersection)
        assert 3 <= cc <= 4


class TestLowerBounds:
    def test_log_rank_equality_is_tight_up_to_one(self):
        # EQ's matrix is the identity: rank m, so bound = ceil(log2 m);
        # exact D = ceil(log2 m) + 1.
        for m in (2, 4, 8):
            matrix = equality_matrix(m)
            bound = log_rank_lower_bound(matrix)
            exact = exact_deterministic_cc(matrix)
            assert bound <= exact <= bound + 1

    def test_log_rank_below_exact_everywhere(self):
        for matrix in (
            equality_matrix(5),
            greater_than_matrix(6),
            disjointness_matrix(2, 2)[0],
        ):
            assert log_rank_lower_bound(matrix) <= exact_deterministic_cc(
                matrix
            )

    def test_log_rank_constant_function(self):
        assert log_rank_lower_bound([[1, 1], [1, 1]]) == 0
        assert log_rank_lower_bound([[0, 0], [0, 0]]) == 0

    def test_fooling_set_equality(self):
        # The diagonal of EQ is the canonical fooling set: |F| = m.
        for m in (2, 4, 8):
            assert fooling_set_lower_bound(equality_matrix(m)) >= (
                (m - 1).bit_length()
            )

    def test_fooling_set_below_exact(self):
        for matrix in (
            equality_matrix(6),
            greater_than_matrix(5),
            disjointness_matrix(2, 2)[0],
        ):
            assert fooling_set_lower_bound(matrix) <= exact_deterministic_cc(
                matrix
            )

    def test_disjointness_fooling_set_scales_with_universe(self):
        # The classic DISJ fooling set {(S, complement S)} has size 2^n.
        small = fooling_set_lower_bound(disjointness_matrix(2, 2)[0])
        large = fooling_set_lower_bound(disjointness_matrix(3, 3)[0])
        assert large > small


class TestEngineGuards:
    def test_rejects_huge_matrices(self):
        with pytest.raises(ValueError):
            exact_deterministic_cc([[0] * 100] * 100)

    def test_all_subsets_ordering(self):
        subsets = all_subsets(3, 1)
        assert subsets == [
            frozenset(),
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
        ]

    def test_monochromatic_rectangle_lower_bound_consistency(self):
        # A function with m distinct outputs on one row needs >= log2(m)
        # bits (Bob must distinguish them).
        row = [[0, 1, 2, 3]]
        assert exact_deterministic_cc(row) == 2
